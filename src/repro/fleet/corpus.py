"""Deterministic corpus generator: many small archived runs.

CI's fleet job and the test suite need a realistic artifact tree —
dozens of runs across workloads, node counts and counter modes, plus
the awkward cases a production archive accumulates: a fault-injected
run with a RAS log, and an interrupted run whose exporter died
mid-write (truncated ``timeline.jsonl``, corrupt ``report.json``).
:func:`generate_corpus` simulates each run for real (class-S kernels
finish in tens of milliseconds) and lays the artifacts out one
directory per run, exactly as ``python -m repro --trace DIR
--sample-every N`` would.

Everything is seeded and derived from the run index, so two
invocations with the same arguments produce the same corpus layout —
which is what lets CI diff JSONL-backed and SQLite-backed scans of it.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence

from .. import faults as _faults
from ..compiler import O3, O5, compile_program
from ..node import OperatingMode
from ..npb import build_benchmark
from ..obs import report as obs_report
from ..obs import timeline as obs_timeline
from ..obs.logging import get_logger, kv
from ..obs.tracer import span as _span
from ..runtime import Job, Machine

_log = get_logger("fleet.corpus")

#: benchmark rotation for the generated runs
BENCHMARKS = ("EP", "MG", "CG", "FT", "IS", "LU")

#: rank-count rotation (>= 8 so both counter-mode node cards exist)
RANKS = (8, 16, 32)

#: sampled-event set for the network-counter runs: the default mode-0
#: processor events plus the mode-3 torus set
TORUS_EVENTS = obs_timeline.DEFAULT_SAMPLE_EVENTS + (
    "BGP_TORUS_XP_PACKETS", "BGP_TORUS_XM_PACKETS",
    "BGP_TORUS_YP_PACKETS", "BGP_TORUS_YM_PACKETS",
    "BGP_TORUS_ZP_PACKETS", "BGP_TORUS_ZM_PACKETS",
    "BGP_TORUS_RECV_PACKETS", "BGP_TORUS_HOP_CYCLES",
)


def _run_spec(index: int, seed: int) -> Dict[str, Any]:
    """The (deterministic) shape of run ``index``."""
    code = BENCHMARKS[index % len(BENCHMARKS)]
    ranks = RANKS[index % len(RANKS)]
    return {
        "index": index,
        "code": code,
        "ranks": ranks,
        "flags": O5() if index % 4 else O3(),
        "sample_every": (50_000, 100_000, 200_000)[index % 3],
        # every third run monitors the network counter set instead of
        # the L3/DDR set — half the fleet can answer torus questions,
        # the other half L3/DDR questions, like a real node-card split
        "torus": index % 3 == 2,
        "seed": seed * 1000 + index,
    }


def _generate_one(root: str, spec: Dict[str, Any],
                  problem_class: str,
                  fault_config: Optional[_faults.FaultConfig]) -> str:
    """Simulate one run and export its artifact directory."""
    run_dir = os.path.join(
        root, f"run-{spec['index']:03d}-{spec['code'].lower()}")
    os.makedirs(run_dir, exist_ok=True)
    prior = obs_timeline.get_config()
    injector = None
    events = TORUS_EVENTS if spec["torus"] else \
        obs_timeline.DEFAULT_SAMPLE_EVENTS
    obs_timeline.clear_recorded()
    obs_timeline.install_sampling(obs_timeline.TimelineConfig(
        sample_every=spec["sample_every"], events=events))
    try:
        if fault_config is not None:
            injector = _faults.install(fault_config)
        program = compile_program(
            build_benchmark(spec["code"], num_ranks=spec["ranks"],
                            problem_class=problem_class),
            spec["flags"])
        nodes = max(1, spec["ranks"] // 4)
        machine = Machine(nodes, mode=OperatingMode.VNM)
        counter_modes = (0, 3) if spec["torus"] else (0, 2)
        Job(machine, program, spec["ranks"]).run(
            counter_modes=counter_modes)
        timelines = obs_timeline.recorded()
        obs_timeline.export_jsonl(
            os.path.join(run_dir, "timeline.jsonl"), timelines)
        if injector is not None and injector.events:
            injector.export_jsonl(os.path.join(run_dir, "ras.jsonl"))
    finally:
        if injector is not None:
            _faults.uninstall()
        obs_timeline.uninstall_sampling()
        obs_timeline.clear_recorded()
        if prior is not None:
            obs_timeline.install_sampling(prior)
    obs_report.write_report(run_dir)
    return run_dir


def _interrupt(run_dir: str) -> None:
    """Make a run look like its exporter died mid-write."""
    timeline = os.path.join(run_dir, "timeline.jsonl")
    with open(timeline) as fh:
        data = fh.read()
    # cut inside the final record so the last line no longer parses
    cut = max(data.find("\n") + 10, int(len(data) * 0.6))
    with open(timeline, "w") as fh:
        fh.write(data[:cut])
    with open(os.path.join(run_dir, "report.json"), "w") as fh:
        fh.write('{"jobs": [{"job": "')  # half-written JSON document


def generate_corpus(root: str, runs: int = 20, seed: int = 0,
                    problem_class: str = "S",
                    fault_runs: Sequence[int] = (1,),
                    interrupted_runs: Sequence[int] = (3,)) -> List[str]:
    """Generate ``runs`` archived run directories under ``root``.

    Runs rotate through benchmarks, rank counts, compiler flags,
    sampling periods and counter modes (see :func:`_run_spec`).  Runs
    whose index is in ``fault_runs`` execute under seeded fault
    injection (DDR correctable-error bursts + torus link stalls: noisy
    but survivable) and export ``ras.jsonl``; runs in
    ``interrupted_runs`` are truncated after the fact to model an
    exporter killed mid-write.  Returns the run directories created.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    created: List[str] = []
    with _span("fleet.gen_corpus", runs=runs):
        for index in range(runs):
            spec = _run_spec(index, seed)
            fault_config = None
            if index in set(fault_runs):
                fault_config = _faults.FaultConfig(
                    seed=spec["seed"], ddr_error_rate=1.0,
                    link_stall_rate=0.5)
            run_dir = _generate_one(root, spec, problem_class,
                                    fault_config)
            if index in set(interrupted_runs):
                _interrupt(run_dir)
            created.append(run_dir)
            _log.info(kv("fleet.corpus.run", index=index,
                         code=spec["code"], ranks=spec["ranks"],
                         torus=spec["torus"],
                         faults=fault_config is not None,
                         interrupted=index in set(interrupted_runs)))
    manifest = {
        "runs": runs, "seed": seed, "problem_class": problem_class,
        "fault_runs": sorted(set(fault_runs) & set(range(runs))),
        "interrupted_runs": sorted(
            set(interrupted_runs) & set(range(runs))),
    }
    with open(os.path.join(root, "corpus.json"), "w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return created
