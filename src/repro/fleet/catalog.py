"""The artifact catalog: an incremental index over archived run dirs.

A *run* is any directory holding at least one of the artifact files a
traced + sampled ``python -m repro`` invocation exports.  The catalog
walks a fleet root, **fingerprints** every run from artifact stat
signatures (names, sizes, mtimes — no file contents are read for
unchanged runs), and keeps the index in a
:class:`~repro.fleet.datasource.DataSource` table so a re-scan touches
only the delta: new runs, runs whose artifacts changed, and runs that
disappeared.  That is what lets ``summarize-fleet`` over a 10 000-run
archive finish in seconds when 3 runs are new (cf. SUPReMM's
``indexarchives.py``).

Run metadata (workload, node count, config hash) is parsed from the
run's ``timeline.jsonl`` job records — and only for new/changed runs;
partial or truncated artifacts degrade to a ``partial`` flag via
:func:`repro.obs.report.load_artifacts`'s structured warnings.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..obs import metrics as _metrics
from ..obs import report as obs_report
from ..obs.logging import get_logger, kv
from ..obs.tracer import span as _span
from .datasource import DataSource

_log = get_logger("fleet.catalog")

_SCANS = _metrics.counter("fleet.catalog.scans")
_RUNS_SEEN = _metrics.counter("fleet.catalog.runs_seen")
_RUNS_FINGERPRINTED = _metrics.counter("fleet.catalog.runs_fingerprinted")

#: artifact files that make a directory a run (and feed its fingerprint)
ARTIFACT_FILES = (
    "timeline.jsonl",
    "spans.jsonl",
    "metrics.json",
    "trace.json",
    "report.json",
    "report.md",
    "ras.jsonl",
)

#: a directory must hold one of these to count as a run at all
_RUN_MARKERS = ("timeline.jsonl", "report.json", "ras.jsonl")

#: the catalog's own table name in the datasource
CATALOG_TABLE = "catalog"


@dataclass
class RunRecord:
    """One archived run as the catalog sees it."""

    run_id: str          #: relative path from the fleet root
    path: str            #: absolute artifact directory
    fingerprint: str     #: sha256 over artifact (name, size, mtime_ns)
    mtime: float = 0.0   #: newest artifact mtime (seconds)
    artifacts: List[str] = field(default_factory=list)
    # ---- parsed from timeline.jsonl job records (new/changed only) ----
    config_hash: str = ""
    workload: str = ""
    flags: str = ""
    mode: str = ""
    nodes: int = 0
    ranks: int = 0
    sample_every: int = 0
    jobs: int = 0
    elapsed_cycles: float = 0.0
    partial: bool = False
    warnings: int = 0

    # ------------------------------------------------------------------
    def to_row(self) -> Dict[str, Any]:
        return {
            "run": self.run_id,
            "fingerprint": self.fingerprint,
            "mtime": self.mtime,
            "artifacts": list(self.artifacts),
            "config_hash": self.config_hash,
            "workload": self.workload,
            "flags": self.flags,
            "mode": self.mode,
            "nodes": self.nodes,
            "ranks": self.ranks,
            "sample_every": self.sample_every,
            "jobs": self.jobs,
            "elapsed_cycles": self.elapsed_cycles,
            "partial": self.partial,
            "warnings": self.warnings,
        }

    @classmethod
    def from_row(cls, row: Dict[str, Any],
                 root: Optional[str] = None) -> "RunRecord":
        return cls(
            run_id=row["run"],
            path=(os.path.join(root, row["run"]) if root else row["run"]),
            fingerprint=row.get("fingerprint", ""),
            mtime=row.get("mtime", 0.0),
            artifacts=list(row.get("artifacts", [])),
            config_hash=row.get("config_hash", ""),
            workload=row.get("workload", ""),
            flags=row.get("flags", ""),
            mode=row.get("mode", ""),
            nodes=int(row.get("nodes", 0)),
            ranks=int(row.get("ranks", 0)),
            sample_every=int(row.get("sample_every", 0)),
            jobs=int(row.get("jobs", 0)),
            elapsed_cycles=float(row.get("elapsed_cycles", 0.0)),
            partial=bool(row.get("partial", False)),
            warnings=int(row.get("warnings", 0)),
        )

    # ------------------------------------------------------------------
    def load_artifacts(self) -> Dict[str, Any]:
        """This run's artifacts, loaded leniently (partial runs survive)."""
        return obs_report.load_artifacts(self.path, require_timeline=False)


@dataclass
class CatalogDelta:
    """What one :meth:`Catalog.refresh` found, relative to the index."""

    added: List[RunRecord] = field(default_factory=list)
    changed: List[RunRecord] = field(default_factory=list)
    unchanged: List[RunRecord] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)

    @property
    def to_process(self) -> List[RunRecord]:
        """The runs a summarization pass must (re-)process."""
        return self.added + self.changed

    @property
    def total(self) -> int:
        return (len(self.added) + len(self.changed)
                + len(self.unchanged))

    def counts(self) -> Dict[str, int]:
        return {"added": len(self.added), "changed": len(self.changed),
                "unchanged": len(self.unchanged),
                "removed": len(self.removed), "total": self.total}


# ---------------------------------------------------------------------------
# scanning
# ---------------------------------------------------------------------------
def _fingerprint(path: str) -> tuple[str, float, List[str]]:
    """(sha256 signature, newest mtime, artifact names) of one run dir.

    Stat-only: the signature covers each artifact's name, size and
    mtime_ns, which is what makes unchanged-run detection O(stat) —
    the whole point of the incremental index.
    """
    digest = hashlib.sha256()
    newest = 0.0
    present: List[str] = []
    for name in ARTIFACT_FILES:
        try:
            st = os.stat(os.path.join(path, name))
        except OSError:
            continue
        present.append(name)
        digest.update(f"{name}:{st.st_size}:{st.st_mtime_ns}\n".encode())
        newest = max(newest, st.st_mtime)
    return digest.hexdigest()[:40], newest, present


def discover_runs(root: str) -> List[RunRecord]:
    """Walk ``root`` and fingerprint every run directory found.

    The catalog's own storage (``.fleet``) and hidden directories are
    skipped; returned records carry only stat-level fields — job
    metadata is parsed later, and only for new/changed runs.
    """
    root = os.path.abspath(root)
    records: List[RunRecord] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if not d.startswith("."))
        names = set(filenames)
        if not names.intersection(_RUN_MARKERS):
            continue
        fingerprint, mtime, present = _fingerprint(dirpath)
        run_id = os.path.relpath(dirpath, root)
        records.append(RunRecord(
            run_id=run_id.replace(os.sep, "/"),
            path=dirpath, fingerprint=fingerprint, mtime=mtime,
            artifacts=present))
    records.sort(key=lambda record: record.run_id)
    _RUNS_SEEN.inc(len(records))
    return records


def parse_run_metadata(record: RunRecord) -> RunRecord:
    """Fill a stat-level record with job metadata from its artifacts.

    Reads ``timeline.jsonl`` job records (leniently); a run with no
    parseable job record — interrupted before export, or truncated —
    is flagged ``partial`` and keeps zeroed metadata so the catalog
    still tracks it.
    """
    _RUNS_FINGERPRINTED.inc()
    artifacts = record.load_artifacts()
    jobs = [r for r in artifacts["records"] if r.get("kind") == "job"]
    record.warnings = len(artifacts["warnings"])
    record.partial = bool(artifacts["warnings"]) or not jobs
    record.jobs = len(jobs)
    if jobs:
        first = jobs[0]
        record.workload = "+".join(
            sorted({str(j.get("program", "?")) for j in jobs}))
        record.flags = str(first.get("flags", ""))
        record.mode = str(first.get("mode", ""))
        record.nodes = max(int(j.get("nodes", 0) or 0) for j in jobs)
        record.ranks = max(int(j.get("ranks", 0) or 0) for j in jobs)
        record.sample_every = int(first.get("sample_every", 0) or 0)
        record.elapsed_cycles = float(sum(
            float(j.get("elapsed_cycles", 0.0) or 0.0) for j in jobs))
        config = tuple(
            (str(j.get("program", "")), str(j.get("flags", "")),
             str(j.get("mode", "")), int(j.get("nodes", 0) or 0),
             int(j.get("ranks", 0) or 0),
             int(j.get("sample_every", 0) or 0))
            for j in jobs)
        record.config_hash = hashlib.sha256(
            repr(config).encode()).hexdigest()[:16]
    return record


# ---------------------------------------------------------------------------
# the index
# ---------------------------------------------------------------------------
class Catalog:
    """The persistent run index, backed by a datasource table."""

    def __init__(self, datasource: DataSource):
        self.datasource = datasource

    def rows(self) -> List[Dict[str, Any]]:
        """The indexed runs as stored rows (key order)."""
        return self.datasource.read_table(CATALOG_TABLE)

    def records(self, root: Optional[str] = None) -> List[RunRecord]:
        """The indexed runs as :class:`RunRecord` objects."""
        return [RunRecord.from_row(row, root) for row in self.rows()]

    # ------------------------------------------------------------------
    def refresh(self, root: str) -> CatalogDelta:
        """Scan ``root`` and classify every run against the index.

        New and changed runs get their metadata (re-)parsed from the
        artifacts; unchanged runs keep their stored metadata without a
        single artifact read.  The index itself is **not** written here
        — callers commit via :meth:`commit` once downstream processing
        succeeded, so a crashed summarization never marks work done.
        """
        _SCANS.inc()
        with _span("fleet.catalog.scan", root=root) as scan_span:
            indexed = {row["run"]: row for row in self.rows()}
            delta = CatalogDelta()
            seen = set()
            for record in discover_runs(root):
                seen.add(record.run_id)
                stored = indexed.get(record.run_id)
                if stored is None:
                    delta.added.append(parse_run_metadata(record))
                elif stored.get("fingerprint") != record.fingerprint:
                    delta.changed.append(parse_run_metadata(record))
                else:
                    delta.unchanged.append(
                        RunRecord.from_row(stored, root))
            delta.removed = sorted(set(indexed) - seen)
            counts = delta.counts()
            for name, value in counts.items():
                scan_span.set(name, value)
            _log.info(kv("fleet.catalog.scan", root=root, **counts))
            return delta

    def commit(self, delta: CatalogDelta) -> None:
        """Persist a refresh's outcome into the index table."""
        rows = [record.to_row()
                for record in delta.added + delta.changed]
        if rows:
            self.datasource.upsert(CATALOG_TABLE, rows)
        if delta.removed:
            self.datasource.delete(CATALOG_TABLE, delta.removed)
