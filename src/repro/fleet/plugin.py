"""Summarizer plugin protocol, registry and discovery.

Each derived-metric summarizer is a :class:`SummarizerPlugin` subclass
that *declares* what it needs — artifact files
(``requires_artifacts``) and counter events (``requires_events``) —
and implements ``process(run, artifacts) -> row``.  The engine
instantiates one plugin per (run, plugin) pair inside the pool worker,
counts every ``process`` call on a metrics counter
(``fleet.process.<name>``; the incremental-rescan acceptance test
reads it), and commits the returned row into the plugin's summary
table.  A plugin that cannot summarize a run raises :class:`SkipRun`
with a reason; the engine records a skip row instead of failing the
scan (cf. supremm's ``ProcessingError``).

Discovery is entry-point-style without requiring an installed
distribution: built-ins self-register on import, third-party modules
named in the ``REPRO_FLEET_PLUGINS`` environment variable (or passed
to :func:`discover_plugins`) are imported so their ``@register``
decorators run, and genuine ``repro.fleet.plugins`` entry points are
honoured when ``importlib.metadata`` finds any.
"""

from __future__ import annotations

import importlib
import os
from typing import Any, Dict, Iterable, List, Mapping, Optional, Type

from ..obs import metrics as _metrics
from ..obs.logging import get_logger, kv

_log = get_logger("fleet.plugin")

#: entry-point group third-party distributions can publish plugins under
ENTRY_POINT_GROUP = "repro.fleet.plugins"

#: environment variable naming extra plugin modules (comma-separated)
PLUGIN_MODULES_ENV = "REPRO_FLEET_PLUGINS"


class SkipRun(Exception):
    """Raised by ``process`` when a run lacks what the plugin needs."""


class SummarizerPlugin:
    """Base class: declare requirements, summarize one run at a time."""

    #: unique summarizer name; also the summary table suffix
    name: str = ""
    #: artifact files that must be present in the run directory
    requires_artifacts: tuple = ("timeline.jsonl",)
    #: event names (or ``*``-free prefixes via ``requires_event_prefixes``)
    #: that must appear in the run's sampled node totals
    requires_events: tuple = ()
    #: event-name prefixes, any match satisfies the requirement
    requires_event_prefixes: tuple = ()
    #: bumped when a plugin's row schema changes; stored on every row so
    #: stale rows can be re-processed after an upgrade
    schema_version: int = 1

    # ------------------------------------------------------------------
    def process(self, run: Any,
                artifacts: Dict[str, Any]) -> Dict[str, Any]:
        """Summarize one run into a flat row (numbers + short strings).

        ``run`` is the catalog's :class:`~repro.fleet.catalog.RunRecord`
        and ``artifacts`` the lenient
        :func:`~repro.obs.report.load_artifacts` dict.  Raise
        :class:`SkipRun` when the run cannot be summarized.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # shared helpers for the artifact shapes every summarizer reads
    # ------------------------------------------------------------------
    def check_requirements(self, run: Any,
                           artifacts: Dict[str, Any]) -> None:
        """Raise :class:`SkipRun` unless the declared needs are met."""
        present = set(getattr(run, "artifacts", ()) or ())
        missing = [name for name in self.requires_artifacts
                   if name not in present]
        if missing:
            raise SkipRun(f"missing artifact(s) {', '.join(missing)}")
        if self.requires_events or self.requires_event_prefixes:
            totals = self.machine_totals(artifacts)
            absent = [name for name in self.requires_events
                      if name not in totals]
            if absent:
                raise SkipRun(f"events not sampled: {', '.join(absent)}")
            for prefix in self.requires_event_prefixes:
                if not any(name.startswith(prefix) for name in totals):
                    raise SkipRun(f"no {prefix}* events sampled")

    @staticmethod
    def job_records(artifacts: Dict[str, Any]) -> List[Dict[str, Any]]:
        return [r for r in artifacts["records"]
                if r.get("kind") == "job"]

    @staticmethod
    def node_totals(artifacts: Dict[str, Any]
                    ) -> Dict[int, Dict[str, int]]:
        """Per-node whole-run event totals across every job in the run."""
        out: Dict[int, Dict[str, int]] = {}
        for record in artifacts["records"]:
            if record.get("kind") != "node":
                continue
            node = out.setdefault(int(record.get("node", -1)), {})
            for name, value in (record.get("totals") or {}).items():
                node[name] = node.get(name, 0) + int(value)
        return out

    @classmethod
    def machine_totals(cls, artifacts: Dict[str, Any]) -> Dict[str, int]:
        """Machine-wide event totals summed over the sampled nodes."""
        merged: Dict[str, int] = {}
        for totals in cls.node_totals(artifacts).values():
            for name, value in totals.items():
                merged[name] = merged.get(name, 0) + value
        return merged

    @classmethod
    def elapsed_cycles(cls, artifacts: Dict[str, Any]) -> float:
        """Run-level elapsed cycles (summed across the run's jobs)."""
        return float(sum(
            float(j.get("elapsed_cycles", 0.0) or 0.0)
            for j in cls.job_records(artifacts)))

    @staticmethod
    def ratio(numerator: float, denominator: float) -> Optional[float]:
        """A guarded division: ``None`` instead of a fabricated 0/0."""
        return numerator / denominator if denominator else None


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
_REGISTRY: Dict[str, Type[SummarizerPlugin]] = {}


def register(cls: Type[SummarizerPlugin]) -> Type[SummarizerPlugin]:
    """Class decorator: add a summarizer to the process-wide registry.

    Re-registering the same name is last-write-wins (module reloads in
    tests), but two *different* classes colliding on a name is a bug.
    """
    if not cls.name:
        raise ValueError(f"{cls.__name__} must set a non-empty name")
    existing = _REGISTRY.get(cls.name)
    if existing is not None and existing.__qualname__ != cls.__qualname__:
        raise ValueError(
            f"plugin name {cls.name!r} already registered by "
            f"{existing.__module__}.{existing.__qualname__}")
    _REGISTRY[cls.name] = cls
    return cls


def get_plugin(name: str) -> Type[SummarizerPlugin]:
    discover_plugins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown summarizer {name!r}; available: "
            f"{', '.join(sorted(_REGISTRY))}") from None


def available_plugins() -> Dict[str, Type[SummarizerPlugin]]:
    """Name -> class of every discovered summarizer."""
    discover_plugins()
    return dict(sorted(_REGISTRY.items()))


def process_counter(name: str) -> _metrics.Counter:
    """The per-plugin process-call counter (merged across pool workers)."""
    return _metrics.counter(f"fleet.process.{name}")


_discovered = False


def discover_plugins(extra_modules: Iterable[str] = ()) -> List[str]:
    """Import every plugin source so ``@register`` decorators run.

    Sources, in order: the built-in :mod:`repro.fleet.summarizers`;
    modules named in ``REPRO_FLEET_PLUGINS`` (comma-separated import
    paths); ``extra_modules``; and any installed ``repro.fleet.plugins``
    entry points.  Import failures are logged and skipped — a broken
    third-party plugin must not take the whole fleet scan down.
    """
    global _discovered
    modules: List[str] = []
    if not _discovered:
        _discovered = True
        modules.append("repro.fleet.summarizers")
        env = os.environ.get(PLUGIN_MODULES_ENV, "")
        modules.extend(m.strip() for m in env.split(",") if m.strip())
    modules.extend(extra_modules)
    imported: List[str] = []
    for module in modules:
        try:
            importlib.import_module(module)
            imported.append(module)
        except Exception as exc:
            _log.warning(kv("fleet.plugin.import_failed", module=module,
                            error=f"{type(exc).__name__}: {exc}"))
    if modules and imported != ["repro.fleet.summarizers"]:
        _log.debug(kv("fleet.plugin.discovered", modules=imported))
    _load_entry_points()
    return imported


_entry_points_loaded = False


def _load_entry_points() -> None:
    """Honour genuine packaging entry points when any are installed."""
    global _entry_points_loaded
    if _entry_points_loaded:
        return
    _entry_points_loaded = True
    try:
        from importlib.metadata import entry_points
    except ImportError:  # pragma: no cover - py3.8 fallback territory
        return
    try:
        found = entry_points(group=ENTRY_POINT_GROUP)
    except TypeError:  # pragma: no cover - pre-3.10 selectable API
        found = entry_points().get(ENTRY_POINT_GROUP, [])
    for entry in found:
        try:
            entry.load()
        except Exception as exc:  # pragma: no cover - env dependent
            _log.warning(kv("fleet.plugin.entry_point_failed",
                            name=entry.name,
                            error=f"{type(exc).__name__}: {exc}"))
