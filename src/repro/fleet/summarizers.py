"""Built-in derived-metric summarizers.

Each plugin reduces one archived run to a flat row of derived metrics
— the paper's methodology (raw counter dumps -> derived metrics ->
cross-workload characterization) applied at fleet scale.  The raw
material is the run's sampled telemetry: per-node whole-run event
totals from ``timeline.jsonl`` plus the RAS event log.  The cpi /
flops / l3 / ddr rows evaluate the built-in ``BGP_BASE`` performance
group (:mod:`repro.groups`) — the same formula documents behind
:mod:`repro.core.metrics` and the single-run report — so a fleet row
for one run agrees with the single-run report for that run by
construction.

Every row keeps its inputs (cycles, instruction counts, line counts)
next to the derived ratio, so fleet-level re-aggregation can weight by
work instead of averaging averages.
"""

from __future__ import annotations

from typing import Any, Dict

from ..groups import get_group
from .plugin import SkipRun, SummarizerPlugin, register


def _round(value: Any, digits: int = 6) -> Any:
    """Stable row values: floats rounded, None preserved.

    Both storage backends round-trip rows through JSON; rounding here
    keeps the tables byte-comparable across platforms and spares the
    report renderer 17-digit noise.
    """
    if isinstance(value, float):
        return round(value, digits)
    return value


def _row(**fields: Any) -> Dict[str, Any]:
    return {name: _round(value) for name, value in fields.items()}


@register
class CpiSummarizer(SummarizerPlugin):
    """Cycles per instruction over the run's monitored cores."""

    name = "cpi"
    requires_artifacts = ("timeline.jsonl",)
    requires_event_prefixes = ("BGP_PU",)

    def process(self, run, artifacts) -> Dict[str, Any]:
        self.check_requirements(run, artifacts)
        totals = self.machine_totals(artifacts)
        vals = get_group("BGP_BASE").evaluate(
            totals, only=("total_cycles", "instructions", "cpi"))
        if not vals["instructions"]:
            raise SkipRun("no completed instructions sampled")
        return _row(cycles=vals["total_cycles"],
                    instructions=vals["instructions"],
                    cpi=vals["cpi"])


@register
class FlopsSummarizer(SummarizerPlugin):
    """Delivered floating-point throughput (flops/cycle, MFLOPS)."""

    name = "flops"
    requires_artifacts = ("timeline.jsonl",)
    requires_event_prefixes = ("BGP_PU",)

    def process(self, run, artifacts) -> Dict[str, Any]:
        self.check_requirements(run, artifacts)
        totals = self.machine_totals(artifacts)
        elapsed = self.elapsed_cycles(artifacts)
        if elapsed <= 0:
            raise SkipRun("no elapsed cycles recorded")
        vals = get_group("BGP_BASE").evaluate(
            totals, params={"cycles": elapsed},
            only=("flops", "flops_per_cycle", "mflops"))
        return _row(flops=vals["flops"], elapsed_cycles=elapsed,
                    flops_per_cycle=vals["flops_per_cycle"],
                    mflops=vals["mflops"])


@register
class L3Summarizer(SummarizerPlugin):
    """Shared-L3 hit rate from the L3 read/miss counters."""

    name = "l3"
    requires_artifacts = ("timeline.jsonl",)
    requires_events = ("BGP_L3_READ",)

    def process(self, run, artifacts) -> Dict[str, Any]:
        self.check_requirements(run, artifacts)
        totals = self.machine_totals(artifacts)
        vals = get_group("BGP_BASE").evaluate(
            totals, only=("l3_reads", "l3_misses", "l3_hit_rate"))
        if not vals["l3_reads"]:
            raise SkipRun("no L3 reads sampled")
        return _row(l3_reads=vals["l3_reads"],
                    l3_misses=vals["l3_misses"],
                    l3_hit_rate=vals["l3_hit_rate"])


@register
class DdrSummarizer(SummarizerPlugin):
    """L3<->DDR traffic and average DDR bandwidth."""

    name = "ddr"
    requires_artifacts = ("timeline.jsonl",)
    requires_event_prefixes = ("BGP_DDR",)

    def process(self, run, artifacts) -> Dict[str, Any]:
        self.check_requirements(run, artifacts)
        totals = self.machine_totals(artifacts)
        elapsed = self.elapsed_cycles(artifacts)
        if elapsed <= 0:
            raise SkipRun("no elapsed cycles recorded")
        vals = get_group("BGP_BASE").evaluate(
            totals, params={"cycles": elapsed},
            only=("ddr_bytes", "ddr_bytes_per_sec",
                  "ddr_bytes_per_kcycle"))
        return _row(ddr_bytes=vals["ddr_bytes"],
                    ddr_bytes_per_sec=vals["ddr_bytes_per_sec"],
                    ddr_bytes_per_kcycle=vals["ddr_bytes_per_kcycle"])


@register
class TorusSummarizer(SummarizerPlugin):
    """Torus link utilization: traffic volume and per-link balance.

    Needs a run sampled with the mode-3 network counter set
    (``counter_modes=(0, 3)``); runs monitored with the default
    ``(0, 2)`` split skip with a clear reason.
    """

    name = "torus"
    requires_artifacts = ("timeline.jsonl",)
    requires_event_prefixes = ("BGP_TORUS_",)

    LINKS = ("XP", "XM", "YP", "YM", "ZP", "ZM")

    def process(self, run, artifacts) -> Dict[str, Any]:
        self.check_requirements(run, artifacts)
        totals = self.machine_totals(artifacts)
        per_link = {link: totals.get(f"BGP_TORUS_{link}_PACKETS", 0)
                    for link in self.LINKS}
        sent = sum(per_link.values())
        if not sent:
            raise SkipRun("no torus packets sampled")
        elapsed = self.elapsed_cycles(artifacts)
        busiest = max(per_link, key=per_link.get)
        mean = sent / len(self.LINKS)
        return _row(
            torus_packets=sent,
            torus_recv=totals.get("BGP_TORUS_RECV_PACKETS", 0),
            packets_per_kcycle=(sent / elapsed * 1e3 if elapsed else None),
            busiest_link=busiest,
            # >1: traffic concentrates on few links; 1: perfectly even
            link_utilization_ratio=per_link[busiest] / mean,
        )


@register
class ImbalanceSummarizer(SummarizerPlugin):
    """Cross-node load imbalance over whole-run event totals."""

    name = "imbalance"
    requires_artifacts = ("timeline.jsonl",)

    def process(self, run, artifacts) -> Dict[str, Any]:
        self.check_requirements(run, artifacts)
        per_node = self.node_totals(artifacts)
        per_event: Dict[str, list] = {}
        for totals in per_node.values():
            for name, value in totals.items():
                per_event.setdefault(name, []).append(value)
        worst_event, worst = "", 0.0
        accumulated, measured = 0.0, 0
        for name, values in per_event.items():
            if len(values) < 2:
                continue
            mean = sum(values) / len(values)
            if mean <= 0:
                continue
            imbalance = (max(values) - min(values)) / mean
            accumulated += imbalance
            measured += 1
            if imbalance > worst:
                worst_event, worst = name, imbalance
        if not measured:
            raise SkipRun("fewer than two nodes sampled any event")
        return _row(sampled_nodes=len(per_node),
                    events_measured=measured,
                    max_imbalance=worst,
                    max_imbalance_event=worst_event,
                    mean_imbalance=accumulated / measured)


@register
class RasSummarizer(SummarizerPlugin):
    """RAS/fault event counts from the injected-fault log.

    Runs without a ``ras.jsonl`` are healthy, not skippable: they
    produce an all-zero row, so fleet percentiles over fault counts
    mean something and a single faulty run stands out as the outlier.
    """

    name = "ras"
    requires_artifacts = ("timeline.jsonl",)

    KINDS = ("node_failure", "sram_bit_flip", "wrap_storm",
             "ddr_correctable", "link_stall")

    def process(self, run, artifacts) -> Dict[str, Any]:
        self.check_requirements(run, artifacts)
        events = artifacts.get("ras") or []
        by_kind = dict.fromkeys(self.KINDS, 0)
        fatal = 0
        for event in events:
            kind = event.get("kind", "")
            if kind in by_kind:
                by_kind[kind] += 1
            if event.get("severity") == "fatal":
                fatal += 1
        return _row(ras_events=len(events), fatal=fatal,
                    **{f"ras_{kind}": count
                       for kind, count in by_kind.items()})
