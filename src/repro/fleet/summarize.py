"""The fleet summarization engine behind ``summarize-fleet``.

One pass: refresh the incremental catalog, work out which (run,
plugin) pairs actually need processing, fan those runs over
:func:`repro.parallel.parallel_map` (inheriting its retry/timeout/
pool-respawn resilience — one unreadable run directory must never sink
a 10 000-run scan), commit the per-run rows into the datasource's
summary tables, and render the cross-run fleet report.

Incrementality is per (run, plugin):

* new or changed runs are processed by every requested plugin;
* unchanged runs are processed only by plugins that have no stored row
  for them (a plugin added after the last scan) or whose stored row
  carries a stale ``schema`` version;
* removed runs are dropped from the catalog and every summary table.

The scan itself is a first-class observable job: it runs under
``fleet.*`` tracer spans, counts runs/rows/process-calls on the
metrics registry (pool workers ship theirs back through the parallel
protocol), and logs structured progress — so ``--trace`` on the CLI
yields a Perfetto timeline *of the summarization*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from ..obs import metrics as _metrics
from ..obs.logging import get_logger, kv
from ..obs.tracer import span as _span
from ..parallel import parallel_map
from .catalog import Catalog, CatalogDelta, RunRecord
from .datasource import DataSource, create_datasource
from .plugin import (
    SkipRun,
    available_plugins,
    get_plugin,
    process_counter,
)
from .report import build_fleet_report, write_fleet_report

_log = get_logger("fleet.summarize")

_RUNS_PROCESSED = _metrics.counter("fleet.runs_processed")
_RUNS_REUSED = _metrics.counter("fleet.runs_reused")
_PLUGIN_ERRORS = _metrics.counter("fleet.plugin_errors")
_RUNS_INDEXED = _metrics.gauge("fleet.runs_indexed")


def _table_name(plugin_name: str) -> str:
    return f"summary.{plugin_name}"


def _summarize_run(root: str, row: Dict[str, Any],
                   plugin_names: Sequence[str]) -> Dict[str, Dict[str, Any]]:
    """Pool target: run the named plugins over one archived run.

    Loads the run's artifacts once (leniently — partial runs yield
    rows, not crashes) and returns one committed-shape row per plugin.
    A plugin raising :class:`SkipRun` records a skip row; any other
    plugin exception records an error row, because a single broken
    summarizer or run must not fail the fleet scan.
    """
    record = RunRecord.from_row(row, root)
    out: Dict[str, Dict[str, Any]] = {}
    with _span("fleet.run", run=record.run_id,
               plugins=len(plugin_names)):
        artifacts = record.load_artifacts()
        for name in plugin_names:
            plugin = get_plugin(name)()
            process_counter(name).inc()
            base = {"run": record.run_id, "status": "ok",
                    "schema": plugin.schema_version}
            try:
                base.update(plugin.process(record, artifacts))
            except SkipRun as exc:
                base["status"] = f"skipped: {exc}"
            except Exception as exc:
                _PLUGIN_ERRORS.inc()
                base["status"] = (f"error: {type(exc).__name__}: "
                                  f"{exc}")
                _log.warning(kv("fleet.plugin_error", run=record.run_id,
                                plugin=name,
                                error=f"{type(exc).__name__}: {exc}"))
            out[name] = base
    _RUNS_PROCESSED.inc()
    return out


@dataclass
class FleetSummary:
    """Everything one ``summarize-fleet`` pass produced."""

    root: str
    datasource_kind: str
    delta: Dict[str, int]
    #: number of (run, plugin) process calls this pass performed
    processed: int
    plugins: List[str] = field(default_factory=list)
    tables: Dict[str, List[Dict[str, Any]]] = field(default_factory=dict)
    report: Dict[str, Any] = field(default_factory=dict)
    report_paths: Dict[str, str] = field(default_factory=dict)


def summarize_fleet(root: str,
                    datasource: Union[DataSource, str, None] = None,
                    plugins: Optional[Sequence[str]] = None,
                    jobs: Optional[int] = None,
                    out_dir: Optional[str] = None,
                    write_report: bool = True) -> FleetSummary:
    """Index ``root`` and summarize the delta; returns the fleet state.

    ``datasource`` is a spec string (see
    :func:`~repro.fleet.datasource.create_datasource`), an open
    :class:`DataSource`, or None for the JSONL default under
    ``<root>/.fleet``.  ``plugins`` defaults to every discovered
    summarizer.  ``jobs`` overrides the process-wide worker count for
    the fan-out.  The fleet report lands in ``out_dir`` (default: the
    fleet root) unless ``write_report`` is off.
    """
    own_source = not isinstance(datasource, DataSource)
    source = (create_datasource(datasource, base=root)
              if own_source else datasource)
    try:
        names = (sorted(plugins) if plugins
                 else sorted(available_plugins()))
        for name in names:
            get_plugin(name)  # unknown names fail before any work
        with _span("fleet.summarize", root=root,
                   plugins=len(names)) as fleet_span:
            catalog = Catalog(source)
            delta = catalog.refresh(root)
            _RUNS_INDEXED.set(delta.total)

            # ---- per-(run, plugin) work list --------------------------
            work: Dict[str, List[str]] = {}
            for record in delta.to_process:
                work[record.run_id] = list(names)
            by_id = {record.run_id: record
                     for record in delta.to_process + delta.unchanged}
            for name in names:
                stored = {
                    row["run"]: row.get("schema")
                    for row in source.read_table(_table_name(name))}
                schema = get_plugin(name).schema_version
                for record in delta.unchanged:
                    if stored.get(record.run_id) != schema:
                        work.setdefault(record.run_id, []).append(name)
            _RUNS_REUSED.inc(delta.total - len(work))
            _log.info(kv("fleet.work", runs=len(work),
                         reused=delta.total - len(work),
                         removed=len(delta.removed)))

            # ---- fan the work over the resilient pool -----------------
            ordered = sorted(work)
            outputs = parallel_map(
                _summarize_run,
                [(root, by_id[run_id].to_row(), tuple(work[run_id]))
                 for run_id in ordered],
                jobs=jobs, label="fleet")

            # ---- commit rows, drop removed runs, save the catalog -----
            per_plugin: Dict[str, List[Dict[str, Any]]] = {}
            for rows in outputs:
                for name, row in rows.items():
                    per_plugin.setdefault(name, []).append(row)
            for name in names:
                rows = per_plugin.get(name, [])
                if rows:
                    source.upsert(_table_name(name), rows)
                if delta.removed:
                    source.delete(_table_name(name), delta.removed)
            catalog.commit(delta)

            # ---- cross-run report -------------------------------------
            tables = {name: source.read_table(_table_name(name))
                      for name in names}
            with _span("fleet.report"):
                report = build_fleet_report(catalog.rows(), tables)
            paths: Dict[str, str] = {}
            if write_report:
                paths = write_fleet_report(report, out_dir or root)
                for path in paths.values():
                    _log.info(kv("fleet.artifact", path=path))
            processed = sum(len(p) for p in work.values())
            fleet_span.set("runs", delta.total)
            fleet_span.set("processed", processed)
            return FleetSummary(
                root=root,
                datasource_kind=source.kind,
                delta=delta.counts(),
                processed=processed,
                plugins=names,
                tables=tables,
                report=report,
                report_paths=paths,
            )
    finally:
        if own_source:
            source.close()
