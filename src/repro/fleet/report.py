"""Cross-run fleet report: percentile bands and outlier-run flagging.

The single-run report answers "what did this run do"; the fleet report
answers "which runs are *unlike the others*".  For every numeric
column of every summarizer table it computes percentile bands
(min/p10/p50/p90/max) across the corpus and flags outlier runs with a
robust band test: a value is an outlier when it falls outside
``[p10 - 1.5*(p90-p10), p90 + 1.5*(p90-p10)]``.  Percentile-based
fences (rather than mean/stddev) keep one broken run from widening its
own acceptance band — the same reasoning as the timeline pipeline's
percentile bands.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence

STATUS_OK = "ok"

#: fence width in (p90 - p10) units for the outlier test
FENCE_FACTOR = 1.5


def _percentile(ordered: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile of an ascending sequence (non-empty)."""
    rank = max(1, -(-pct * len(ordered) // 100))  # ceil
    return ordered[min(rank, len(ordered)) - 1]


def column_stats(rows: Sequence[Dict[str, Any]],
                 column: str) -> Optional[Dict[str, Any]]:
    """Percentile-band stats of one numeric column over OK rows."""
    values = sorted(
        float(row[column]) for row in rows
        if row.get("status") == STATUS_OK
        and isinstance(row.get(column), (int, float))
        and not isinstance(row.get(column), bool))
    if not values:
        return None
    return {
        "count": len(values),
        "min": values[0],
        "p10": _percentile(values, 10),
        "p50": _percentile(values, 50),
        "p90": _percentile(values, 90),
        "max": values[-1],
        "mean": sum(values) / len(values),
    }


def flag_outliers(rows: Sequence[Dict[str, Any]], column: str,
                  stats: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Runs whose ``column`` value falls outside the robust fences."""
    band = stats["p90"] - stats["p10"]
    if band <= 0 or stats["count"] < 4:
        # a degenerate band (constant column, or too few runs for the
        # percentiles to mean anything) flags nothing rather than
        # everything
        return []
    low = stats["p10"] - FENCE_FACTOR * band
    high = stats["p90"] + FENCE_FACTOR * band
    out = []
    for row in rows:
        value = row.get(column)
        if (row.get("status") != STATUS_OK
                or not isinstance(value, (int, float))
                or isinstance(value, bool)):
            continue
        if value < low or value > high:
            out.append({"run": row["run"], "column": column,
                        "value": value,
                        "fence": "low" if value < low else "high",
                        "p50": stats["p50"]})
    return out


def _numeric_columns(rows: Sequence[Dict[str, Any]]) -> List[str]:
    names: List[str] = []
    for row in rows:
        for name, value in row.items():
            if name in ("run", "status", "schema"):
                continue
            if (isinstance(value, (int, float))
                    and not isinstance(value, bool)
                    and name not in names):
                names.append(name)
    return sorted(names)


def build_fleet_report(catalog_rows: Sequence[Dict[str, Any]],
                       tables: Dict[str, List[Dict[str, Any]]]
                       ) -> Dict[str, Any]:
    """Assemble the machine-readable fleet report."""
    workloads: Dict[str, int] = {}
    partial = []
    for row in catalog_rows:
        workloads[row.get("workload") or "?"] = (
            workloads.get(row.get("workload") or "?", 0) + 1)
        if row.get("partial"):
            partial.append(row["run"])
    report: Dict[str, Any] = {
        "runs": len(catalog_rows),
        "workloads": dict(sorted(workloads.items())),
        "partial_runs": sorted(partial),
        "plugins": {},
    }
    for name in sorted(tables):
        rows = tables[name]
        ok = [row for row in rows if row.get("status") == STATUS_OK]
        skipped = [{"run": row["run"], "status": row.get("status", "")}
                   for row in rows if row.get("status") != STATUS_OK]
        columns: Dict[str, Any] = {}
        outliers: List[Dict[str, Any]] = []
        for column in _numeric_columns(ok):
            stats = column_stats(rows, column)
            if stats is None:
                continue
            columns[column] = stats
            outliers.extend(flag_outliers(rows, column, stats))
        outliers.sort(key=lambda o: (o["run"], o["column"]))
        report["plugins"][name] = {
            "runs": len(rows),
            "ok": len(ok),
            "skipped": sorted(skipped, key=lambda s: s["run"]),
            "columns": columns,
            "outliers": outliers,
        }
    return report


# ---------------------------------------------------------------------------
# markdown rendering
# ---------------------------------------------------------------------------
def _md_table(headers: Sequence[str],
              rows: Sequence[Sequence[Any]]) -> str:
    out = ["| " + " | ".join(str(h) for h in headers) + " |",
           "|" + "|".join(" --- " for _ in headers) + "|"]
    for row in rows:
        out.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(out)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value and abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:,.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_fleet_markdown(report: Dict[str, Any]) -> str:
    """The fleet report as a human-readable markdown document."""
    lines: List[str] = ["# Fleet report", ""]
    lines += [f"{report['runs']} indexed run(s); workloads: "
              + ", ".join(f"{name} x{count}" for name, count in
                          report["workloads"].items()), ""]
    if report["partial_runs"]:
        lines += ["Partial runs (missing/truncated artifacts): "
                  + ", ".join(f"`{run}`"
                              for run in report["partial_runs"]), ""]
    for name, section in report["plugins"].items():
        lines += [f"## {name}", ""]
        lines += [f"{section['ok']}/{section['runs']} run(s) "
                  "summarized", ""]
        if section["columns"]:
            rows = [[column, stats["count"], _fmt(stats["min"]),
                     _fmt(stats["p10"]), _fmt(stats["p50"]),
                     _fmt(stats["p90"]), _fmt(stats["max"])]
                    for column, stats in section["columns"].items()]
            lines.append(_md_table(
                ["metric", "runs", "min", "p10", "p50", "p90", "max"],
                rows))
            lines.append("")
        if section["outliers"]:
            lines += ["### Outlier runs", ""]
            rows = [[f"`{o['run']}`", o["column"], _fmt(o["value"]),
                     o["fence"], _fmt(o["p50"])]
                    for o in section["outliers"]]
            lines.append(_md_table(
                ["run", "metric", "value", "fence", "fleet p50"], rows))
            lines.append("")
        if section["skipped"]:
            rows = [[f"`{s['run']}`", s["status"]]
                    for s in section["skipped"]]
            lines += ["### Skipped runs", "",
                      _md_table(["run", "reason"], rows), ""]
    return "\n".join(lines).rstrip() + "\n"


def write_fleet_report(report: Dict[str, Any],
                       out_dir: str) -> Dict[str, str]:
    """Write ``fleet_report.md`` + ``fleet_report.json``."""
    os.makedirs(out_dir, exist_ok=True)
    json_path = os.path.join(out_dir, "fleet_report.json")
    with open(json_path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    md_path = os.path.join(out_dir, "fleet_report.md")
    with open(md_path, "w") as fh:
        fh.write(render_fleet_markdown(report))
    return {"json": json_path, "markdown": md_path}
