"""Pluggable storage for the fleet catalog and summary tables.

Both the artifact catalog and every summarizer plugin's per-run rows
are plain tables: dict rows keyed by a unique string column (the run
id).  :func:`create_datasource` hides two interchangeable backends
behind that table model:

* :class:`JsonlDataSource` — one ``<table>.jsonl`` file per table in a
  directory; human-greppable, diff-friendly, append-cheap;
* :class:`SqliteDataSource` — one SQLite file holding every table;
  compact and queryable at hundreds of thousands of rows.

The backends are required to be **observationally identical**: rows
round-trip through JSON in both, reads return rows ordered by key, and
the CI fleet job diffs a JSONL-backed scan against a SQLite-backed one
for byte equality (:func:`DataSource.dump_canonical`).
"""

from __future__ import annotations

import json
import os
import sqlite3
import tempfile
from typing import Any, Dict, Iterable, List, Optional

from ..obs import metrics as _metrics
from ..obs.logging import get_logger, kv

_log = get_logger("fleet.datasource")

_ROWS_WRITTEN = _metrics.counter("fleet.datasource.rows_written")
_ROWS_READ = _metrics.counter("fleet.datasource.rows_read")

#: the key column every table row must carry
KEY = "run"


def _canonical(row: Dict[str, Any]) -> str:
    """One row as canonical JSON (sorted keys, no whitespace games)."""
    return json.dumps(row, sort_keys=True, separators=(",", ":"))


class DataSource:
    """Abstract table store: dict rows keyed by the ``run`` column."""

    #: short backend tag ("jsonl" / "sqlite"), set by subclasses
    kind = "abstract"

    def read_table(self, table: str) -> List[Dict[str, Any]]:
        """Every row of ``table`` in ascending key order ([] if absent)."""
        raise NotImplementedError

    def upsert(self, table: str, rows: Iterable[Dict[str, Any]]) -> int:
        """Insert or replace rows by key; returns the row count written."""
        raise NotImplementedError

    def delete(self, table: str, keys: Iterable[str]) -> int:
        """Drop rows by key; returns how many existed."""
        raise NotImplementedError

    def tables(self) -> List[str]:
        """Sorted names of the tables that currently hold rows."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any backend handles (idempotent)."""

    # ------------------------------------------------------------------
    def __enter__(self) -> "DataSource":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def dump_canonical(self) -> str:
        """Every table as canonical JSON lines — the cross-backend diff.

        Two datasources holding identical logical content produce
        byte-identical dumps regardless of backend, which is exactly
        what CI's JSONL-vs-SQLite equality gate compares.
        """
        lines: List[str] = []
        for table in self.tables():
            for row in self.read_table(table):
                lines.append(f"{table}\t{_canonical(row)}")
        return "\n".join(lines) + ("\n" if lines else "")


def _validated(rows: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    out = []
    for row in rows:
        key = row.get(KEY)
        if not isinstance(key, str) or not key:
            raise ValueError(
                f"datasource rows need a non-empty string {KEY!r} "
                f"column, got {row!r}")
        out.append(row)
    return out


# ---------------------------------------------------------------------------
# JSONL directory backend
# ---------------------------------------------------------------------------
class JsonlDataSource(DataSource):
    """A directory of ``<table>.jsonl`` files, one canonical row per line.

    Writes are atomic (temp file + ``os.replace``, the
    :mod:`repro.checkpoint` idiom) so a crash mid-upsert can never leave
    a half-written table that a later incremental scan would trust.
    """

    kind = "jsonl"

    def __init__(self, directory: str):
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)

    def _path(self, table: str) -> str:
        if "/" in table or os.sep in table:
            raise ValueError(f"table name must be flat, got {table!r}")
        return os.path.join(self.directory, f"{table}.jsonl")

    def _load(self, table: str) -> Dict[str, Dict[str, Any]]:
        path = self._path(table)
        rows: Dict[str, Dict[str, Any]] = {}
        try:
            with open(path) as fh:
                for line in fh:
                    line = line.strip()
                    if line:
                        row = json.loads(line)
                        rows[row[KEY]] = row
        except FileNotFoundError:
            pass
        return rows

    def _store(self, table: str, rows: Dict[str, Dict[str, Any]]) -> None:
        path = self._path(table)
        if not rows:
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass
            return
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                for key in sorted(rows):
                    fh.write(_canonical(rows[key]) + "\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    def read_table(self, table: str) -> List[Dict[str, Any]]:
        rows = self._load(table)
        _ROWS_READ.inc(len(rows))
        return [rows[key] for key in sorted(rows)]

    def upsert(self, table: str, rows: Iterable[Dict[str, Any]]) -> int:
        fresh = _validated(rows)
        if not fresh:
            return 0
        existing = self._load(table)
        for row in fresh:
            existing[row[KEY]] = row
        self._store(table, existing)
        _ROWS_WRITTEN.inc(len(fresh))
        return len(fresh)

    def delete(self, table: str, keys: Iterable[str]) -> int:
        existing = self._load(table)
        dropped = 0
        for key in keys:
            if existing.pop(key, None) is not None:
                dropped += 1
        if dropped:
            self._store(table, existing)
        return dropped

    def tables(self) -> List[str]:
        return sorted(
            name[:-len(".jsonl")]
            for name in os.listdir(self.directory)
            if name.endswith(".jsonl"))


# ---------------------------------------------------------------------------
# SQLite backend
# ---------------------------------------------------------------------------
class SqliteDataSource(DataSource):
    """Every table in one SQLite file.

    Rows are stored as canonical JSON payloads in a single
    ``fleet_rows (tbl, key, payload)`` relation — logical tables are a
    column, not DDL, so table names never meet SQL identifier quoting
    and the payload round-trips exactly like the JSONL backend's.
    """

    kind = "sqlite"

    def __init__(self, path: str):
        self.path = str(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._conn = sqlite3.connect(self.path)
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS fleet_rows ("
            " tbl TEXT NOT NULL, key TEXT NOT NULL, payload TEXT NOT NULL,"
            " PRIMARY KEY (tbl, key))")
        self._conn.commit()

    def read_table(self, table: str) -> List[Dict[str, Any]]:
        cursor = self._conn.execute(
            "SELECT payload FROM fleet_rows WHERE tbl = ? ORDER BY key",
            (table,))
        rows = [json.loads(payload) for (payload,) in cursor]
        _ROWS_READ.inc(len(rows))
        return rows

    def upsert(self, table: str, rows: Iterable[Dict[str, Any]]) -> int:
        fresh = _validated(rows)
        if not fresh:
            return 0
        self._conn.executemany(
            "INSERT OR REPLACE INTO fleet_rows (tbl, key, payload) "
            "VALUES (?, ?, ?)",
            [(table, row[KEY], _canonical(row)) for row in fresh])
        self._conn.commit()
        _ROWS_WRITTEN.inc(len(fresh))
        return len(fresh)

    def delete(self, table: str, keys: Iterable[str]) -> int:
        keys = list(keys)
        if not keys:
            return 0
        cursor = self._conn.executemany(
            "DELETE FROM fleet_rows WHERE tbl = ? AND key = ?",
            [(table, key) for key in keys])
        self._conn.commit()
        return cursor.rowcount if cursor.rowcount >= 0 else 0

    def tables(self) -> List[str]:
        cursor = self._conn.execute(
            "SELECT DISTINCT tbl FROM fleet_rows ORDER BY tbl")
        return [name for (name,) in cursor]

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None


# ---------------------------------------------------------------------------
# factory
# ---------------------------------------------------------------------------
def create_datasource(spec: Optional[str] = None,
                      base: Optional[str] = None) -> DataSource:
    """Open a datasource from a ``--datasource`` spec string.

    Accepted forms (``base`` is the fleet root, used for defaults)::

        None / ""          JSONL under <base>/.fleet/tables
        "jsonl"            JSONL under <base>/.fleet/tables
        "sqlite"           SQLite at  <base>/.fleet/fleet.sqlite
        "jsonl:DIR"        JSONL under DIR
        "sqlite:PATH"      SQLite at PATH
        "some/dir"         JSONL under some/dir
        "file.sqlite|.db"  SQLite at that path
    """
    spec = (spec or "jsonl").strip()
    scheme, sep, rest = spec.partition(":")
    if sep and scheme in ("jsonl", "sqlite"):
        path = rest
    elif sep and scheme.isalpha() and len(scheme) > 1:
        # "postgres:..." must fail loudly, not become a directory
        # literally named "postgres:..."
        raise ValueError(
            f"unknown datasource scheme {scheme!r} in {spec!r}; "
            "use jsonl[:DIR] or sqlite[:PATH]")
    elif spec in ("jsonl", "sqlite"):
        scheme, path = spec, ""
    elif spec.endswith((".sqlite", ".db")):
        scheme, path = "sqlite", spec
    else:
        scheme, path = "jsonl", spec
    if not path:
        if base is None:
            raise ValueError(
                f"datasource spec {spec!r} has no path and no fleet "
                "root to default under")
        path = os.path.join(
            base, ".fleet",
            "tables" if scheme == "jsonl" else "fleet.sqlite")
    if scheme == "sqlite":
        source: DataSource = SqliteDataSource(path)
    else:
        source = JsonlDataSource(path)
    _log.debug(kv("fleet.datasource", kind=source.kind, path=path))
    return source
