"""Throughput-oriented timing model of the PPC450 + Double Hummer.

For the long regular loops of HPC kernels, execution time is bounded by
whichever of these is largest:

* front-end issue bandwidth (2 instructions/cycle),
* occupancy of each functional unit (integer pipe, the single
  load/store pipe, the FPU — with divides blocking for ~30 cycles),
* the loop's critical dependence chain, expressed as a *serial
  fraction*: the share of instructions whose full result latency is
  exposed rather than hidden by independent work.

Memory stall cycles are computed by the hierarchy model and added on
top by the core (:mod:`repro.cpu.core`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

import numpy as np

from ..isa import ISSUE_WIDTH, TIMING, InstructionMix, OpClass, Unit


@dataclass
class CycleBreakdown:
    """Where a loop's compute cycles come from."""

    issue_cycles: float = 0.0
    unit_cycles: Dict[Unit, float] = field(default_factory=dict)
    dependence_cycles: float = 0.0

    @property
    def bound(self) -> str:
        """Name of the binding resource ("issue", a unit, "dependence")."""
        candidates = {"issue": self.issue_cycles,
                      "dependence": self.dependence_cycles}
        for unit, cycles in self.unit_cycles.items():
            candidates[unit.value] = cycles
        return max(candidates, key=candidates.get)

    @property
    def total(self) -> float:
        """Compute cycles: the max over all binding resources."""
        return max(self.issue_cycles, self.dependence_cycles,
                   *(self.unit_cycles.values() or [0.0]))


@dataclass(frozen=True)
class PipelineConfig:
    """Tunables of the timing model."""

    issue_width: int = ISSUE_WIDTH
    #: cycles lost per branch (mispredict + fetch bubble, amortized)
    branch_penalty: float = 1.0
    #: fraction of branches paying the penalty
    mispredict_rate: float = 0.03


class PipelineModel:
    """Turns an :class:`InstructionMix` into compute cycles."""

    def __init__(self, config: PipelineConfig = PipelineConfig()):
        self.config = config

    def compute_cycles(self, mix: InstructionMix,
                       serial_fraction: float = 0.05) -> CycleBreakdown:
        """Cycle breakdown of executing ``mix`` once.

        ``serial_fraction`` encodes the loop's dependence structure:
        0 for perfectly software-pipelined streams, approaching 1 for a
        pure recurrence (each op waits its predecessor's full latency).
        """
        if not 0.0 <= serial_fraction <= 1.0:
            raise ValueError(
                f"serial_fraction must be in [0, 1], got {serial_fraction}")
        breakdown = CycleBreakdown()
        breakdown.issue_cycles = mix.total() / self.config.issue_width

        unit_busy: Dict[Unit, float] = {u: 0.0 for u in Unit}
        dependence = 0.0
        for op, count in mix:
            if count == 0:
                continue
            timing = TIMING[op]
            unit_busy[timing.unit] += timing.issue_cycles * count
            dependence += timing.latency * count * serial_fraction
            if op is OpClass.BRANCH:
                unit_busy[timing.unit] += (count
                                           * self.config.mispredict_rate
                                           * self.config.branch_penalty)
        breakdown.unit_cycles = unit_busy
        breakdown.dependence_cycles = dependence
        return breakdown

    def cycles(self, mix: InstructionMix,
               serial_fraction: float = 0.05) -> float:
        """Shortcut for ``compute_cycles(...).total``."""
        return self.compute_cycles(mix, serial_fraction).total

    def compute_cycles_batch(self, mix_matrix: np.ndarray,
                             serial_fractions: Sequence[float]
                             ) -> np.ndarray:
        """Total compute cycles for a whole (classes × opclass) matrix.

        Row ``i`` of ``mix_matrix`` is one mix vector
        (:meth:`InstructionMix.as_vector`); the result is the array of
        ``compute_cycles(mix_i, sf_i).total`` values, byte-identical to
        the scalar loop (enforced by ``tests/test_machine_vec.py``).
        The accumulations walk op classes in the scalar iteration order;
        rows a scalar run would skip (zero counts) contribute exact 0.0
        terms instead.
        """
        matrix = np.asarray(mix_matrix, dtype=np.float64)
        sf = np.asarray(serial_fractions, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != len(sf):
            raise ValueError(
                f"mix matrix {matrix.shape} does not match "
                f"{len(sf)} serial fractions")
        if np.any((sf < 0.0) | (sf > 1.0)):
            raise ValueError("serial_fraction must be in [0, 1]")
        issue = matrix.sum(axis=1) / self.config.issue_width
        busy: Dict[Unit, np.ndarray] = {
            u: np.zeros(len(sf)) for u in Unit}
        dependence = np.zeros(len(sf))
        for op in OpClass:
            timing = TIMING[op]
            col = matrix[:, int(op)]
            busy[timing.unit] = (busy[timing.unit]
                                 + timing.issue_cycles * col)
            dependence = dependence + timing.latency * col * sf
            if op is OpClass.BRANCH:
                busy[timing.unit] = (
                    busy[timing.unit]
                    + col * self.config.mispredict_rate
                    * self.config.branch_penalty)
        total = np.maximum(issue, dependence)
        for unit_cycles in busy.values():
            total = np.maximum(total, unit_cycles)
        return total
