"""PPC450 core timing model."""

from .core import CoreExecution, PPC450Core
from .pipeline import CycleBreakdown, PipelineConfig, PipelineModel

__all__ = [
    "PPC450Core",
    "CoreExecution",
    "PipelineModel",
    "PipelineConfig",
    "CycleBreakdown",
]
