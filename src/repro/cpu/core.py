"""One PPC450 core: executes workload loops and emits UPC events.

The core combines the pipeline timing model with the memory hierarchy's
stall estimate and translates everything a loop did — instruction
counts by class, cycles, cache behaviour — into the per-core UPC event
pulses of counter mode 0 (pipe/FPU/L1) and mode 1 (L2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..isa import InstructionMix, OpClass
from ..mem.analytical import LoopMemoryResult
from .pipeline import PipelineConfig, PipelineModel

#: map from op class to the per-core UPC event suffix counting it
_OP_EVENT_SUFFIX = {
    OpClass.INT_ALU: "INT_ALU",
    OpClass.INT_MUL: "INT_MUL",
    OpClass.INT_DIV: "INT_DIV",
    OpClass.BRANCH: "BRANCH",
    OpClass.LOAD: "LOAD",
    OpClass.STORE: "STORE",
    OpClass.QUADLOAD: "QUADLOAD",
    OpClass.QUADSTORE: "QUADSTORE",
    OpClass.FP_ADDSUB: "FPU_ADDSUB",
    OpClass.FP_MUL: "FPU_MUL",
    OpClass.FP_DIV: "FPU_DIV",
    OpClass.FP_FMA: "FPU_FMA",
    OpClass.FP_SIMD_ADDSUB: "FPU_SIMD_ADDSUB",
    OpClass.FP_SIMD_MUL: "FPU_SIMD_MUL",
    OpClass.FP_SIMD_DIV: "FPU_SIMD_DIV",
    OpClass.FP_SIMD_FMA: "FPU_SIMD_FMA",
    OpClass.OTHER: "OTHER_INST",
}


@dataclass
class CoreExecution:
    """Outcome of running some work on one core."""

    core_id: int
    compute_cycles: float = 0.0
    memory_stall_cycles: float = 0.0
    extra_stall_cycles: float = 0.0  #: DDR contention, added post-hoc
    mix: InstructionMix = field(default_factory=InstructionMix)
    memory: LoopMemoryResult = field(default_factory=LoopMemoryResult)

    @property
    def cycles(self) -> float:
        """Total core-visible cycles of the work."""
        return (self.compute_cycles + self.memory_stall_cycles
                + self.extra_stall_cycles)

    def add(self, other: "CoreExecution") -> None:
        """Accumulate another execution on the same core."""
        if other.core_id != self.core_id:
            raise ValueError(
                f"cannot merge executions of cores {self.core_id} "
                f"and {other.core_id}")
        self.compute_cycles += other.compute_cycles
        self.memory_stall_cycles += other.memory_stall_cycles
        self.extra_stall_cycles += other.extra_stall_cycles
        self.mix += other.mix
        self.memory.add(other.memory)

    # ------------------------------------------------------------------
    def events(self) -> Dict[str, int]:
        """All per-core UPC event pulses for this execution.

        Covers counter mode 0 (cycles, instruction classes, L1, stalls)
        and mode 1 (L2 + prefetcher).  Shared L3/DDR events are owned by
        the node, not the core.
        """
        c = self.core_id
        ev: Dict[str, int] = {}
        for op, suffix in _OP_EVENT_SUFFIX.items():
            count = int(round(self.mix[op]))
            if count:
                ev[f"BGP_PU{c}_{suffix}"] = count
        ev[f"BGP_PU{c}_CYCLES"] = int(round(self.cycles))
        ev[f"BGP_PU{c}_INST_COMPLETED"] = int(round(self.mix.total()))
        ev[f"BGP_PU{c}_STALL_MEM"] = int(round(self.memory_stall_cycles
                                               + self.extra_stall_cycles))
        mem = self.memory
        ev[f"BGP_PU{c}_L1D_READ_HIT"] = int(round(mem.l1.hits))
        ev[f"BGP_PU{c}_L1D_READ_MISS"] = int(round(mem.l1.misses))
        ev[f"BGP_PU{c}_L2_READ"] = int(round(mem.l2.accesses))
        ev[f"BGP_PU{c}_L2_HIT"] = int(round(mem.l2.hits))
        ev[f"BGP_PU{c}_L2_MISS"] = int(round(mem.l2.misses))
        ev[f"BGP_PU{c}_L2_PREFETCH_HIT"] = int(round(mem.l2.prefetch_hits))
        ev[f"BGP_PU{c}_L2_PREFETCH_ISSUED"] = int(round(
            mem.l2.prefetch_issued))
        ev[f"BGP_PU{c}_L2_WRITETHROUGH"] = int(round(mem.l1.writethroughs))
        return ev


class PPC450Core:
    """Execution engine of one core."""

    def __init__(self, core_id: int,
                 pipeline: Optional[PipelineModel] = None):
        if not 0 <= core_id <= 3:
            raise ValueError(f"core_id must be 0..3, got {core_id}")
        self.core_id = core_id
        self.pipeline = pipeline or PipelineModel(PipelineConfig())

    def execute(self, mix: InstructionMix,
                memory: Optional[LoopMemoryResult] = None,
                serial_fraction: float = 0.05) -> CoreExecution:
        """Run an instruction mix with its memory behaviour attached.

        ``memory`` carries the hierarchy model's counts and stall
        estimate for the same work (None for compute-only regions).
        """
        memory = memory or LoopMemoryResult()
        breakdown = self.pipeline.compute_cycles(mix, serial_fraction)
        return CoreExecution(
            core_id=self.core_id,
            compute_cycles=breakdown.total,
            memory_stall_cycles=memory.stall_cycles,
            mix=mix.copy(),
            memory=memory,
        )

    def idle_execution(self) -> CoreExecution:
        """An empty execution (an unused core in SMP/1 mode)."""
        return CoreExecution(core_id=self.core_id)
