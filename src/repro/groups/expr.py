"""The performance-group formula language: safe arithmetic, no eval.

LIKWID performance groups express derived metrics as small arithmetic
formulas over counter names (``flops / seconds / 1e6``).  Group files
are *data* — possibly user-supplied via ``REPRO_GROUPS_PATH`` — so the
formulas must never reach ``eval()``.  This module compiles a formula
to a Python AST once, validates every node against a whitelist, and
interprets the tree with caller-supplied name resolution.

Whitelisted surface:

* binary ``+ - * /`` and unary ``+ -``
* int/float literals (``128``, ``1e6``, ``100_000``)
* bare names, resolved by the evaluator (counter events, constants,
  earlier metrics, or evaluation-time parameters)
* calls to the per-core folds ``sum_cores(SUFFIX)`` /
  ``max_cores(SUFFIX)`` / ``min_cores(SUFFIX)``, whose single argument
  is a per-core event *suffix* (``CYCLES`` -> ``BGP_PU0_CYCLES`` ..
  ``BGP_PU3_CYCLES``)

Everything else — attributes, subscripts, comparisons, power (a DoS
vector: ``9**9**9``), lambdas, comprehensions, keywords — is rejected
at compile time with the offending fragment named.  Division by zero
is *not* an expression error: the group evaluator catches it per
metric and reports the metric as ``0.0``, matching the guard clauses
the hand-written :mod:`repro.core.metrics` formulas always had.
"""

from __future__ import annotations

import ast
from typing import Callable, List, Sequence, Tuple

#: the only callables a formula may invoke, all per-core folds
CORE_FOLDS = ("sum_cores", "max_cores", "min_cores")


class ExpressionError(ValueError):
    """A formula failed the whitelist or referenced the unresolvable."""


_BINOPS = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.Div: lambda a, b: a / b,
}

_UNARYOPS = {
    ast.UAdd: lambda a: +a,
    ast.USub: lambda a: -a,
}


class CompiledExpr:
    """One validated formula, ready to interpret.

    Attributes
    ----------
    text:
        The source formula.
    names:
        Bare names the formula references (events, constants, metrics,
        parameters) — the validation surface for group loading.
    core_refs:
        ``(fold, suffix)`` pairs used via the per-core fold calls.
    """

    __slots__ = ("text", "names", "core_refs", "_tree")

    def __init__(self, text: str, tree: ast.expression,
                 names: Tuple[str, ...],
                 core_refs: Tuple[Tuple[str, str], ...]):
        self.text = text
        self._tree = tree
        self.names = names
        self.core_refs = core_refs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledExpr({self.text!r})"

    # ------------------------------------------------------------------
    def evaluate(self, lookup: Callable[[str], float],
                 core_values: Callable[[str], Sequence[float]]) -> float:
        """Interpret the tree.

        ``lookup(name)`` resolves a bare name to a number;
        ``core_values(suffix)`` returns the four per-core values a fold
        call reduces.  ``ZeroDivisionError`` propagates to the caller
        (the group evaluator turns it into a ``0.0`` metric).
        """
        def ev(node: ast.AST):
            if isinstance(node, ast.Constant):
                return node.value
            if isinstance(node, ast.Name):
                return lookup(node.id)
            if isinstance(node, ast.BinOp):
                return _BINOPS[type(node.op)](ev(node.left),
                                              ev(node.right))
            if isinstance(node, ast.UnaryOp):
                return _UNARYOPS[type(node.op)](ev(node.operand))
            if isinstance(node, ast.Call):
                values = core_values(node.args[0].id)
                fold = node.func.id
                if fold == "sum_cores":
                    return sum(values)
                if fold == "max_cores":
                    return max(values)
                return min(values)
            raise ExpressionError(  # pragma: no cover - compile-gated
                f"unexpected node {type(node).__name__}")

        return ev(self._tree)


def _reject(text: str, node: ast.AST, why: str) -> ExpressionError:
    fragment = ast.get_source_segment(text, node) or type(node).__name__
    return ExpressionError(f"in formula {text!r}: {why} ({fragment!r})")


def compile_expr(text: str) -> CompiledExpr:
    """Parse + whitelist-validate one formula."""
    if not isinstance(text, str) or not text.strip():
        raise ExpressionError(f"formula must be a non-empty string, "
                              f"got {text!r}")
    try:
        tree = ast.parse(text, mode="eval")
    except SyntaxError as exc:
        raise ExpressionError(
            f"in formula {text!r}: {exc.msg}") from None

    names: List[str] = []
    core_refs: List[Tuple[str, str]] = []

    def check(node: ast.AST) -> None:
        if isinstance(node, ast.Constant):
            if not isinstance(node.value, (int, float)) \
                    or isinstance(node.value, bool):
                raise _reject(text, node,
                              "only numeric literals are allowed")
            return
        if isinstance(node, ast.Name):
            if node.id in CORE_FOLDS:
                raise _reject(text, node,
                              "core folds must be called, not referenced")
            if node.id not in names:
                names.append(node.id)
            return
        if isinstance(node, ast.BinOp):
            if type(node.op) not in _BINOPS:
                raise _reject(text, node,
                              f"operator {type(node.op).__name__} is "
                              "not whitelisted")
            check(node.left)
            check(node.right)
            return
        if isinstance(node, ast.UnaryOp):
            if type(node.op) not in _UNARYOPS:
                raise _reject(text, node,
                              f"operator {type(node.op).__name__} is "
                              "not whitelisted")
            check(node.operand)
            return
        if isinstance(node, ast.Call):
            if not isinstance(node.func, ast.Name) \
                    or node.func.id not in CORE_FOLDS:
                raise _reject(text, node,
                              "only the per-core folds "
                              f"{CORE_FOLDS} may be called")
            if node.keywords or len(node.args) != 1 \
                    or not isinstance(node.args[0], ast.Name):
                raise _reject(text, node,
                              "core folds take exactly one bare event "
                              "suffix")
            ref = (node.func.id, node.args[0].id)
            if ref not in core_refs:
                core_refs.append(ref)
            return
        raise _reject(text, node,
                      f"{type(node).__name__} is not allowed in "
                      "group formulas")

    check(tree.body)
    return CompiledExpr(text, tree.body, tuple(names), tuple(core_refs))
