"""Running over-subscribed performance groups via multiplexing.

A group whose event list spans more counter modes than ``Job.run``
samples at once (``BGP_MEM`` needs modes 0+1+2) cannot be observed
whole: the UPC exposes one mode at a time.  :class:`GroupSchedule`
drives the group through :mod:`repro.core.multiplex` — by default the
ScALPEL-style :class:`~repro.core.multiplex.AdaptiveMultiplexedSession`
— and reports every derived metric together with the honesty labels
multiplexed data needs:

``coverage``
    the smallest fraction of the run any of the metric's input events
    was actually observed for (1.0 for metrics with no counter inputs,
    < 1.0 whenever the group rotated through several modes);
``confidence``
    coverage further discounted by how *stationary* the input events'
    slice rates were (``1 / (1 + cv)``), since ``observed / coverage``
    extrapolation is exact only for stationary workloads.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.counters import UPCUnit
from ..core.events import EVENTS_BY_NAME
from ..core.multiplex import (
    AdaptiveMultiplexedSession,
    MultiplexedSession,
)
from . import PerformanceGroup

__all__ = ["GroupSchedule"]


class GroupSchedule:
    """Observe one performance group through mode multiplexing."""

    def __init__(self, group: PerformanceGroup, upc: UPCUnit,
                 slice_cycles: int = 100_000, adaptive: bool = True,
                 modes: Optional[Sequence[int]] = None, **session_kwargs):
        self.group = group
        self.modes = tuple(modes) if modes is not None else group.modes()
        cls = AdaptiveMultiplexedSession if adaptive \
            else MultiplexedSession
        self.session = cls(upc, modes=self.modes,
                           slice_cycles=slice_cycles, **session_kwargs)

    # ------------------------------------------------------------------
    # driving (delegates to the multiplexed session)
    # ------------------------------------------------------------------
    def advance(self, cycles: int) -> None:
        self.session.advance(cycles)

    def finish(self) -> None:
        self.session.finish()

    @property
    def elapsed_cycles(self) -> int:
        return self.session.elapsed_cycles

    # ------------------------------------------------------------------
    # per-metric honesty labels
    # ------------------------------------------------------------------
    def metric_coverage(self, name: str) -> float:
        """Worst-case observed fraction over the metric's input events."""
        events = self.group.metric_events(name)
        if not events:
            return 1.0
        coverage = 1.0
        for ev_name in events:
            mode = EVENTS_BY_NAME[ev_name].mode
            if mode not in self.session.observations:
                return 0.0
            coverage = min(coverage, self.session.coverage(mode))
        return coverage

    def metric_confidence(self, name: str) -> float:
        """Worst-case extrapolation confidence over the input events."""
        events = self.group.metric_events(name)
        if not events:
            return 1.0
        return min(self.session.confidence(ev) for ev in events)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def results(self) -> Dict[str, Dict[str, float]]:
        """Every group metric from the extrapolated counts.

        Values are computed with ``coerce=False`` so fractional
        extrapolated counts survive, and with the session's true
        elapsed cycles as the rate base (the one quantity multiplexing
        measures exactly).
        """
        estimates = self.session.estimates()
        values = self.group.evaluate(
            estimates,
            params={"cycles": float(self.session.elapsed_cycles)},
            coerce=False)
        return {
            name: {
                "value": values[name],
                "coverage": self.metric_coverage(name),
                "confidence": self.metric_confidence(name),
            }
            for name in self.group.metric_names()
        }

    def report_lines(self) -> List[str]:
        """Human-readable results + per-mode coverage (CLI output)."""
        lines = [f"group {self.group.name} over modes "
                 f"{list(self.modes)} "
                 f"({self.session.elapsed_cycles} cycles, "
                 f"{self.session.rotations} rotations)"]
        lines.extend(self.session.mode_report())
        for name, res in self.results().items():
            mdef = self.group.metric(name)
            unit = f" {mdef.unit}" if mdef.unit else ""
            lines.append(
                f"  {name:>24} = {res['value']:>16.4f}{unit}"
                f"  (coverage {res['coverage']:6.1%},"
                f" confidence {res['confidence']:6.1%})")
        return lines
