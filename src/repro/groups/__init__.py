"""Performance groups: event sets + derived-metric formulas as data.

A *performance group* (the LIKWID concept) bundles the counter events
a measurement needs with the derived-metric formulas computed from
them — MFLOPS, CPI, hit rates, DDR bandwidth — as a declarative
document instead of hand-written Python.  Groups ship as TOML files in
``repro/groups/builtin/`` and users add their own directories through
the ``REPRO_GROUPS_PATH`` environment variable (``os.pathsep``
separated; ``*.toml`` and ``*.json`` files, one group per file, file
stem == group name).

Every document is validated against the :mod:`repro.core.events`
catalog at load time: events must exist, metric formulas must pass the
AST whitelist in :mod:`repro.groups.expr`, and formulas may reference
only catalog events, group constants, the ambient parameters
(``clock_hz``, ``cores``), and *previously defined* metrics of the
same group.  The built-in ``BGP_BASE`` group is the single source of
truth for the formulas that :mod:`repro.core.metrics`,
:mod:`repro.obs.timeline`, :mod:`repro.obs.report`, and
:mod:`repro.fleet.summarizers` expose.

When a group needs events from more counter modes than the UPC can
expose at once, :mod:`repro.groups.schedule` runs it through
:mod:`repro.core.multiplex` and annotates every metric with coverage
and extrapolation confidence.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from ..core.events import CORES_PER_NODE, EVENTS_BY_NAME
from ..isa.latency import CORE_CLOCK_HZ
from .expr import CompiledExpr, ExpressionError, compile_expr

try:  # Python >= 3.11
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - exercised on 3.10 CI
    tomllib = None

__all__ = [
    "AMBIENT_PARAMS",
    "GROUPS_PATH_ENV",
    "GroupError",
    "MetricDef",
    "PerformanceGroup",
    "available_groups",
    "clear_group_cache",
    "get_active_group",
    "get_active_group_name",
    "get_group",
    "load_group_file",
    "set_active_group",
]

#: directory of groups shipped with the package
BUILTIN_DIR = os.path.join(os.path.dirname(__file__), "builtin")

#: environment variable naming extra group directories
GROUPS_PATH_ENV = "REPRO_GROUPS_PATH"

#: names formulas may reference that are injected by the evaluator,
#: not defined in the document: the core clock and the core count
AMBIENT_PARAMS = ("clock_hz", "cores")

_METRIC_TYPES = ("auto", "int", "float")


class GroupError(ValueError):
    """A group document is malformed or references unknown names."""


@dataclass(frozen=True)
class MetricDef:
    """One derived metric of a group."""

    name: str
    formula: str
    expr: CompiledExpr = field(repr=False, compare=False)
    unit: str = ""
    description: str = ""
    #: "int"/"float" coerce the result; "auto" leaves it untouched
    type: str = "auto"
    #: include in per-sample derived timelines (obs.timeline)
    timeline: bool = False
    #: export as a Perfetto counter track
    track: bool = False


@dataclass(frozen=True)
class PerformanceGroup:
    """A validated performance group document."""

    name: str
    description: str
    events: Tuple[str, ...]
    constants: Mapping[str, float]
    metrics: Tuple[MetricDef, ...]
    source: str = "<inline>"

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def metric(self, name: str) -> MetricDef:
        for mdef in self.metrics:
            if mdef.name == name:
                return mdef
        raise KeyError(f"group {self.name!r} has no metric {name!r}")

    def metric_names(self) -> Tuple[str, ...]:
        return tuple(m.name for m in self.metrics)

    def timeline_metrics(self) -> Tuple[str, ...]:
        return tuple(m.name for m in self.metrics if m.timeline)

    def track_metrics(self) -> Tuple[str, ...]:
        return tuple(m.name for m in self.metrics if m.track)

    def modes(self) -> Tuple[int, ...]:
        """Counter modes the group's event list spans, ascending."""
        return tuple(sorted({EVENTS_BY_NAME[name].mode
                             for name in self.events}))

    def metric_events(self, name: str) -> FrozenSet[str]:
        """Catalog events a metric depends on, metric refs expanded."""
        defs = {m.name: m for m in self.metrics}
        seen: set = set()
        events: set = set()

        def walk(metric: str) -> None:
            if metric in seen:
                return
            seen.add(metric)
            expr = defs[metric].expr
            for _, suffix in expr.core_refs:
                events.update(f"BGP_PU{c}_{suffix}"
                              for c in range(CORES_PER_NODE))
            for ref in expr.names:
                if ref in defs:
                    walk(ref)
                elif ref in EVENTS_BY_NAME:
                    events.add(ref)

        walk(defs[name].name if name in defs else self.metric(name).name)
        return frozenset(events)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(self, named: Mapping[str, float],
                 params: Optional[Mapping[str, float]] = None,
                 only: Optional[Iterable[str]] = None,
                 coerce: bool = True) -> Dict[str, float]:
        """Evaluate metrics against a named counter snapshot.

        ``named`` maps catalog event names to counts (missing events
        read as 0, matching ``dict.get`` in the legacy formulas).
        ``params`` overrides any name — most importantly ``cycles``,
        which rate metrics divide by, so callers can evaluate over a
        sample window instead of the run total.  ``only`` restricts
        (and orders) the result keys; the default is every metric in
        definition order.  ``coerce=False`` skips int/float coercion
        so extrapolated (fractional) counter estimates survive.

        A metric whose evaluation divides by zero is reported as
        ``0.0`` — the guard every hand-written formula had.
        """
        params = dict(params) if params else {}
        defs = {m.name: m for m in self.metrics}
        cache: Dict[str, float] = {}
        in_progress: set = set()

        def event_value(name: str) -> float:
            value = named.get(name, 0)
            if isinstance(value, float):
                return value
            return int(value)

        def core_values(suffix: str) -> List[float]:
            return [event_value(f"BGP_PU{c}_{suffix}")
                    for c in range(CORES_PER_NODE)]

        def lookup(name: str) -> float:
            if name in params:
                return params[name]
            if name in cache:
                return cache[name]
            if name in defs:
                return metric_value(name)
            if name in self.constants:
                return self.constants[name]
            if name == "clock_hz":
                return CORE_CLOCK_HZ
            if name == "cores":
                return CORES_PER_NODE
            if name in EVENTS_BY_NAME:
                return event_value(name)
            raise GroupError(f"group {self.name!r}: formula references "
                             f"unknown name {name!r}")

        def metric_value(name: str) -> float:
            if name in in_progress:  # pragma: no cover - load-gated
                raise GroupError(f"group {self.name!r}: metric cycle "
                                 f"through {name!r}")
            in_progress.add(name)
            mdef = defs[name]
            try:
                value = mdef.expr.evaluate(lookup, core_values)
            except ZeroDivisionError:
                value = 0.0
            finally:
                in_progress.discard(name)
            if coerce:
                if mdef.type == "int":
                    value = int(value)
                elif mdef.type == "float":
                    value = float(value)
            cache[name] = value
            return value

        wanted = tuple(only) if only is not None else self.metric_names()
        out: Dict[str, float] = {}
        for name in wanted:
            if name not in defs:
                raise KeyError(f"group {self.name!r} has no metric "
                               f"{name!r}")
            out[name] = lookup(name)
        return out


# ----------------------------------------------------------------------
# document parsing + validation
# ----------------------------------------------------------------------

def _require(cond: bool, source: str, msg: str) -> None:
    if not cond:
        raise GroupError(f"{source}: {msg}")


def _group_from_dict(data: Mapping, source: str) -> PerformanceGroup:
    _require(isinstance(data, Mapping), source,
             "group document must be a table/object")
    name = data.get("name")
    _require(isinstance(name, str) and name.isidentifier(), source,
             f"'name' must be an identifier string, got {name!r}")
    description = data.get("description", "")
    _require(isinstance(description, str), source,
             "'description' must be a string")

    events = data.get("events")
    _require(isinstance(events, (list, tuple)) and events, source,
             "'events' must be a non-empty array of event names")
    seen_events: set = set()
    for ev in events:
        _require(isinstance(ev, str), source,
                 f"event names must be strings, got {ev!r}")
        _require(ev in EVENTS_BY_NAME, source,
                 f"unknown event {ev!r} (not in the BG/P catalog)")
        _require(ev not in seen_events, source,
                 f"duplicate event {ev!r}")
        seen_events.add(ev)

    constants = data.get("constants", {})
    _require(isinstance(constants, Mapping), source,
             "'constants' must be a table of numbers")
    for cname, cval in constants.items():
        _require(isinstance(cname, str) and cname.isidentifier(), source,
                 f"constant name {cname!r} must be an identifier")
        _require(isinstance(cval, (int, float))
                 and not isinstance(cval, bool), source,
                 f"constant {cname!r} must be a number, got {cval!r}")
        _require(cname not in EVENTS_BY_NAME, source,
                 f"constant {cname!r} shadows a catalog event")
        _require(cname not in AMBIENT_PARAMS, source,
                 f"constant {cname!r} shadows an ambient parameter")

    raw_metrics = data.get("metrics")
    _require(isinstance(raw_metrics, (list, tuple)) and raw_metrics,
             source, "'metrics' must be a non-empty array of tables")

    metric_names: set = set()
    metrics: List[MetricDef] = []
    for raw in raw_metrics:
        _require(isinstance(raw, Mapping), source,
                 "each metric must be a table")
        mname = raw.get("name")
        _require(isinstance(mname, str) and mname.isidentifier(), source,
                 f"metric name must be an identifier, got {mname!r}")
        where = f"{source}: metric {mname!r}"
        _require(mname not in metric_names, source,
                 f"duplicate metric {mname!r}")
        _require(mname not in EVENTS_BY_NAME, where,
                 "shadows a catalog event")
        _require(mname not in constants, where, "shadows a constant")
        _require(mname not in AMBIENT_PARAMS, where,
                 "shadows an ambient parameter")
        formula = raw.get("formula")
        try:
            expr = compile_expr(formula)
        except ExpressionError as exc:
            raise GroupError(f"{where}: {exc}") from None
        for ref in expr.names:
            _require(ref in metric_names or ref in constants
                     or ref in AMBIENT_PARAMS or ref in EVENTS_BY_NAME,
                     where,
                     f"formula references {ref!r}, which is not a "
                     "catalog event, constant, ambient parameter, or "
                     "previously defined metric")
        for _, suffix in expr.core_refs:
            for core in range(CORES_PER_NODE):
                _require(f"BGP_PU{core}_{suffix}" in EVENTS_BY_NAME,
                         where,
                         f"{suffix!r} is not a per-core event suffix")
        mtype = raw.get("type", "auto")
        _require(mtype in _METRIC_TYPES, where,
                 f"'type' must be one of {_METRIC_TYPES}, got {mtype!r}")
        unit = raw.get("unit", "")
        mdesc = raw.get("description", "")
        _require(isinstance(unit, str) and isinstance(mdesc, str), where,
                 "'unit' and 'description' must be strings")
        timeline = raw.get("timeline", False)
        track = raw.get("track", False)
        _require(isinstance(timeline, bool) and isinstance(track, bool),
                 where, "'timeline' and 'track' must be booleans")
        metrics.append(MetricDef(name=mname, formula=formula, expr=expr,
                                 unit=unit, description=mdesc,
                                 type=mtype, timeline=timeline,
                                 track=track))
        metric_names.add(mname)

    return PerformanceGroup(name=name, description=description,
                            events=tuple(events),
                            constants=dict(constants),
                            metrics=tuple(metrics), source=source)


# ----------------------------------------------------------------------
# TOML parsing (tomllib when available, subset fallback for 3.10)
# ----------------------------------------------------------------------

def _parse_toml(text: str, source: str) -> Mapping:
    if tomllib is not None:
        try:
            return tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise GroupError(f"{source}: invalid TOML: {exc}") from None
    return _parse_toml_subset(text, source)


def _strip_comment(line: str, source: str) -> str:
    """Drop a ``#`` comment, respecting double-quoted strings."""
    out = []
    in_str = False
    for ch in line:
        if ch == '"':
            in_str = not in_str
        elif ch == "#" and not in_str:
            break
        out.append(ch)
    if in_str:
        raise GroupError(f"{source}: unterminated string in "
                         f"{line.strip()!r}")
    return "".join(out)


def _split_commas(text: str) -> List[str]:
    """Split on commas outside double-quoted strings."""
    parts: List[str] = []
    buf: List[str] = []
    in_str = False
    for ch in text:
        if ch == '"':
            in_str = not in_str
        if ch == "," and not in_str:
            parts.append("".join(buf))
            buf = []
        else:
            buf.append(ch)
    parts.append("".join(buf))
    return parts


def _parse_scalar(token: str, source: str):
    token = token.strip()
    if token.startswith('"') and token.endswith('"') and len(token) >= 2:
        return token[1:-1]
    if token == "true":
        return True
    if token == "false":
        return False
    number = token.replace("_", "")
    try:
        return int(number, 0)
    except ValueError:
        pass
    try:
        return float(number)
    except ValueError:
        raise GroupError(f"{source}: cannot parse value {token!r} "
                         "(fallback TOML parser: strings, numbers, "
                         "booleans, arrays only)") from None


def _parse_toml_subset(text: str, source: str) -> Mapping:
    """Minimal TOML-subset parser for Pythons without :mod:`tomllib`.

    Understands exactly the subset the group documents use: comments,
    ``[table]``, ``[[array-of-tables]]``, ``key = scalar`` and
    ``key = [ ... ]`` arrays (possibly spanning lines).  Equivalence
    with :mod:`tomllib` is pinned by tests on new Pythons.
    """
    root: Dict = {}
    current: Dict = root
    pending = ""
    for raw_line in text.splitlines():
        line = _strip_comment(raw_line, source).strip()
        if pending:
            line = pending + " " + line
            pending = ""
        if not line:
            continue
        if line.startswith("[["):
            _require(line.endswith("]]"), source,
                     f"malformed table header {line!r}")
            key = line[2:-2].strip()
            current = {}
            root.setdefault(key, []).append(current)
            continue
        if line.startswith("["):
            _require(line.endswith("]"), source,
                     f"malformed table header {line!r}")
            key = line[1:-1].strip()
            current = root.setdefault(key, {})
            continue
        _require("=" in line, source, f"expected key = value, got "
                 f"{line!r}")
        key, _, value = line.partition("=")
        key = key.strip()
        value = value.strip()
        if value.startswith("[") and not value.endswith("]"):
            pending = line  # multiline array: keep accumulating
            continue
        if value.startswith("["):
            items = _split_commas(value[1:-1])
            current[key] = [_parse_scalar(item, source)
                            for item in items if item.strip()]
        else:
            current[key] = _parse_scalar(value, source)
    _require(not pending, source, "unterminated array")
    return root


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

_index: Optional[Dict[str, str]] = None
_cache: Dict[str, PerformanceGroup] = {}
_active: Optional[str] = None


def load_group_file(path: str) -> PerformanceGroup:
    """Load + validate one group document (bypassing the registry)."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    if path.endswith(".json"):
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise GroupError(f"{path}: invalid JSON: {exc}") from None
    else:
        data = _parse_toml(text, path)
    group = _group_from_dict(data, path)
    stem = os.path.splitext(os.path.basename(path))[0]
    _require(group.name == stem, path,
             f"group name {group.name!r} must match the file stem "
             f"{stem!r}")
    return group


def _scan_dirs() -> Dict[str, str]:
    index: Dict[str, str] = {}
    dirs = [BUILTIN_DIR]
    env = os.environ.get(GROUPS_PATH_ENV, "")
    dirs.extend(d for d in env.split(os.pathsep) if d)
    for directory in dirs:
        if not os.path.isdir(directory):
            continue
        for entry in sorted(os.listdir(directory)):
            if not entry.endswith((".toml", ".json")):
                continue
            stem = os.path.splitext(entry)[0]
            path = os.path.join(directory, entry)
            if directory != BUILTIN_DIR and stem == "BGP_BASE":
                raise GroupError(
                    f"{path}: BGP_BASE is the byte-identity baseline "
                    "and cannot be overridden; pick another name")
            index[stem] = path  # later (user) dirs override builtins
    return index


def _get_index() -> Dict[str, str]:
    global _index
    if _index is None:
        _index = _scan_dirs()
    return _index


def available_groups() -> Dict[str, str]:
    """Mapping of group name -> source path, sorted by name."""
    return dict(sorted(_get_index().items()))


def get_group(name: str) -> PerformanceGroup:
    """Load a group by name (cached)."""
    if name in _cache:
        return _cache[name]
    index = _get_index()
    if name not in index:
        known = ", ".join(sorted(index)) or "<none>"
        raise KeyError(f"unknown performance group {name!r}; "
                       f"available: {known}")
    group = load_group_file(index[name])
    _cache[name] = group
    return group


def set_active_group(name: str) -> PerformanceGroup:
    """Select the group timeline/report/CLI evaluation resolves to."""
    global _active
    group = get_group(name)
    _active = name
    return group


def get_active_group() -> PerformanceGroup:
    """The selected group, defaulting to ``BGP_BASE``."""
    return get_group(_active if _active is not None else "BGP_BASE")


def get_active_group_name() -> str:
    """The selected group's *name*, without loading its document.

    The cache-key path (``repro.parallel.cache_context``) calls this on
    every persisted record; it must stay a plain attribute read.
    """
    return _active if _active is not None else "BGP_BASE"


def clear_group_cache() -> None:
    """Forget loaded groups + the directory index (tests, env changes)."""
    global _index, _active
    _index = None
    _active = None
    _cache.clear()
