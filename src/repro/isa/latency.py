"""Issue/latency tables for the PowerPC 450 timing model.

The PPC450 is a 2-way superscalar, 7-stage pipelined embedded core.  The
timing model in :mod:`repro.cpu.pipeline` is *throughput-oriented*: for
the long, regular loops of HPC kernels what bounds performance is the
issue bandwidth of each functional unit and the occupancy of blocking
(unpipelined) operations, not individual dependence chains.  The tables
here encode, per op class:

``unit``
    which issue port the class occupies,
``issue_cycles``
    inverse throughput — cycles the unit is busy per instruction
    (1.0 for fully pipelined ops, >1 for blocking ops such as divides),
``latency``
    result latency in cycles, used for the dependence-chain correction.

Numbers are calibrated to public PPC440/450 documentation: fully
pipelined FPU with 5-cycle latency, ~30-cycle blocking double-precision
divide, single load/store pipe with 3..4-cycle L1-hit latency.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

from .opcodes import OpClass


class Unit(enum.Enum):
    """Issue ports of the PPC450 + Double Hummer complex."""

    IPIPE = "integer"    #: integer/branch pipe
    LSU = "load-store"   #: single load/store pipe
    FPU = "fpu"          #: the (dual-pipe) floating point unit


@dataclass(frozen=True)
class OpTiming:
    """Static timing properties of one op class."""

    unit: Unit
    issue_cycles: float
    latency: int


#: Per-class timing table.  SIMD ops occupy the FPU exactly like their
#: scalar counterparts (both pipes fire in lockstep), which is precisely
#: why SIMDization helps: the same FPU issue slot retires twice the work.
TIMING: Dict[OpClass, OpTiming] = {
    OpClass.INT_ALU: OpTiming(Unit.IPIPE, 1.0, 1),
    OpClass.INT_MUL: OpTiming(Unit.IPIPE, 1.0, 5),
    OpClass.INT_DIV: OpTiming(Unit.IPIPE, 33.0, 33),
    OpClass.BRANCH: OpTiming(Unit.IPIPE, 1.0, 1),
    OpClass.LOAD: OpTiming(Unit.LSU, 1.0, 3),
    OpClass.STORE: OpTiming(Unit.LSU, 1.0, 1),
    OpClass.QUADLOAD: OpTiming(Unit.LSU, 1.0, 4),
    OpClass.QUADSTORE: OpTiming(Unit.LSU, 1.0, 1),
    OpClass.FP_ADDSUB: OpTiming(Unit.FPU, 1.0, 5),
    OpClass.FP_MUL: OpTiming(Unit.FPU, 1.0, 5),
    OpClass.FP_DIV: OpTiming(Unit.FPU, 30.0, 30),
    OpClass.FP_FMA: OpTiming(Unit.FPU, 1.0, 5),
    OpClass.FP_SIMD_ADDSUB: OpTiming(Unit.FPU, 1.0, 5),
    OpClass.FP_SIMD_MUL: OpTiming(Unit.FPU, 1.0, 5),
    OpClass.FP_SIMD_DIV: OpTiming(Unit.FPU, 30.0, 30),
    OpClass.FP_SIMD_FMA: OpTiming(Unit.FPU, 1.0, 5),
    OpClass.OTHER: OpTiming(Unit.IPIPE, 1.0, 1),
}

#: Global issue width of the front end (instructions/cycle).
ISSUE_WIDTH = 2

#: BG/P core clock, Hz (850 MHz).
CORE_CLOCK_HZ = 850_000_000

#: Peak node performance used in the paper: 4 cores x 2 pipes x FMA(2)
#: x 850 MHz = 13.6 GFLOPS.
PEAK_NODE_GFLOPS = 13.6


def unit_cycles(op: OpClass, count: float) -> float:
    """Cycles op class ``op`` keeps its unit busy for ``count`` instances."""
    return TIMING[op].issue_cycles * count
