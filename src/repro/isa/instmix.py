"""Dense instruction-mix vectors.

An :class:`InstructionMix` is the unit of account throughout the
simulator: compiler passes rewrite mixes, the pipeline model turns a mix
into cycles, and the UPC unit counts the mix's components as events.

The representation is a dense ``float64`` vector indexed by
:class:`~repro.isa.opcodes.OpClass`.  Floats (not ints) are used because
compiler passes scale mixes by fractional factors (e.g. "SIMDize 70% of
the FP add-subs"); counts are rounded only when they are finally
presented as counter values.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Tuple

import numpy as np

from .opcodes import (
    BYTES_PER_MEM_OP,
    FLOPS_PER_OP,
    FP_CLASSES,
    NUM_OP_CLASSES,
    OpClass,
)


class InstructionMix:
    """A vector of per-op-class instruction counts.

    Supports vector arithmetic (``+``, ``-``, scalar ``*``), dict-like
    access by :class:`OpClass`, and the derived quantities the paper's
    metrics need (total flops, memory bytes, FP fractions).

    Instances are mutable via :meth:`__setitem__` and :meth:`add`; use
    :meth:`copy` when a pass must not alias its input.
    """

    __slots__ = ("_v",)

    def __init__(self, counts: Mapping[OpClass, float] | None = None):
        self._v = np.zeros(NUM_OP_CLASSES, dtype=np.float64)
        if counts:
            for op, n in counts.items():
                self._v[int(op)] = float(n)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_vector(cls, vector: np.ndarray) -> "InstructionMix":
        """Wrap a dense vector (copied) of length ``NUM_OP_CLASSES``."""
        if vector.shape != (NUM_OP_CLASSES,):
            raise ValueError(
                f"expected shape ({NUM_OP_CLASSES},), got {vector.shape}"
            )
        mix = cls()
        mix._v = np.array(vector, dtype=np.float64)
        return mix

    def copy(self) -> "InstructionMix":
        """An independent copy of this mix."""
        return InstructionMix.from_vector(self._v)

    # ------------------------------------------------------------------
    # element access
    # ------------------------------------------------------------------
    def __getitem__(self, op: OpClass) -> float:
        return float(self._v[int(op)])

    def __setitem__(self, op: OpClass, value: float) -> None:
        if value < 0:
            raise ValueError(f"negative count for {op.name}: {value}")
        self._v[int(op)] = float(value)

    def add(self, op: OpClass, value: float) -> None:
        """Increment class ``op`` by ``value`` (may be fractional)."""
        self._v[int(op)] += float(value)
        if self._v[int(op)] < -1e-9:
            raise ValueError(f"count for {op.name} went negative")
        self._v[int(op)] = max(self._v[int(op)], 0.0)

    def as_vector(self) -> np.ndarray:
        """The underlying vector (copy)."""
        return self._v.copy()

    def as_dict(self, nonzero_only: bool = True) -> Dict[OpClass, float]:
        """Mapping view of the mix."""
        return {
            op: float(self._v[int(op)])
            for op in OpClass
            if (not nonzero_only) or self._v[int(op)] != 0.0
        }

    def __iter__(self) -> Iterator[Tuple[OpClass, float]]:
        for op in OpClass:
            yield op, float(self._v[int(op)])

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "InstructionMix") -> "InstructionMix":
        return InstructionMix.from_vector(self._v + other._v)

    def __iadd__(self, other: "InstructionMix") -> "InstructionMix":
        self._v += other._v
        return self

    def __sub__(self, other: "InstructionMix") -> "InstructionMix":
        out = self._v - other._v
        if (out < -1e-6).any():
            raise ValueError("subtraction would produce negative counts")
        return InstructionMix.from_vector(np.maximum(out, 0.0))

    def __mul__(self, scalar: float) -> "InstructionMix":
        if scalar < 0:
            raise ValueError("cannot scale a mix by a negative factor")
        return InstructionMix.from_vector(self._v * float(scalar))

    __rmul__ = __mul__

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, InstructionMix):
            return NotImplemented
        return bool(np.array_equal(self._v, other._v))

    def __hash__(self):  # mixes are mutable
        raise TypeError("InstructionMix is unhashable (mutable)")

    def allclose(self, other: "InstructionMix", rtol: float = 1e-9) -> bool:
        """Approximate equality for test assertions."""
        return bool(np.allclose(self._v, other._v, rtol=rtol, atol=1e-9))

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    def total(self) -> float:
        """Total dynamic instruction count."""
        return float(self._v.sum())

    def total_class(self, ops: Iterable[OpClass]) -> float:
        """Sum of the counts of the given classes."""
        return float(sum(self._v[int(op)] for op in ops))

    def flops(self) -> float:
        """Floating point *operations* completed (FMA = 2, SIMD doubles)."""
        return float(
            sum(self._v[int(op)] * w for op, w in FLOPS_PER_OP.items())
        )

    def fp_instructions(self) -> float:
        """Floating point *instructions* (each SIMD/FMA counts once)."""
        return self.total_class(FP_CLASSES)

    def simd_instructions(self) -> float:
        """Count of two-wide Double Hummer instructions."""
        return float(sum(self._v[int(op)] for op in OpClass if op.is_simd))

    def simd_fraction(self) -> float:
        """SIMD share of FP instructions (0 when there is no FP at all)."""
        fp = self.fp_instructions()
        return self.simd_instructions() / fp if fp > 0 else 0.0

    def memory_instructions(self) -> float:
        """Loads + stores of all widths."""
        return float(sum(self._v[int(op)] for op in OpClass if op.is_memory))

    def memory_bytes(self) -> float:
        """Bytes moved between registers and the L1 data cache."""
        return float(
            sum(self._v[int(op)] * b for op, b in BYTES_PER_MEM_OP.items())
        )

    def fp_profile(self) -> Dict[OpClass, float]:
        """Normalized FP instruction profile, as plotted in Figure 6.

        Returns the fraction of FP instructions in each FP class; empty
        dict when the mix has no FP instructions.
        """
        fp = self.fp_instructions()
        if fp == 0:
            return {}
        return {op: float(self._v[int(op)]) / fp for op in FP_CLASSES}

    def rounded(self) -> Dict[OpClass, int]:
        """Integer counter values (what the UPC unit would report)."""
        return {op: int(round(self._v[int(op)])) for op in OpClass}

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{op.name}={v:.6g}" for op, v in self.as_dict().items()
        )
        return f"InstructionMix({parts})"
