"""PowerPC 450 / Double Hummer instruction-set abstractions.

Exports the op-class enumeration, instruction-mix vectors, and the
timing tables used by the pipeline model.
"""

from .instmix import InstructionMix
from .latency import (
    CORE_CLOCK_HZ,
    ISSUE_WIDTH,
    PEAK_NODE_GFLOPS,
    TIMING,
    OpTiming,
    Unit,
    unit_cycles,
)
from .opcodes import (
    BYTES_PER_MEM_OP,
    FLOPS_PER_OP,
    FP_CLASSES,
    NUM_OP_CLASSES,
    QUAD_EQUIVALENT,
    SCALAR_FP_CLASSES,
    SIMD_EQUIVALENT,
    SIMD_FP_CLASSES,
    OpClass,
)

__all__ = [
    "InstructionMix",
    "OpClass",
    "OpTiming",
    "Unit",
    "TIMING",
    "ISSUE_WIDTH",
    "CORE_CLOCK_HZ",
    "PEAK_NODE_GFLOPS",
    "NUM_OP_CLASSES",
    "FLOPS_PER_OP",
    "BYTES_PER_MEM_OP",
    "FP_CLASSES",
    "SCALAR_FP_CLASSES",
    "SIMD_FP_CLASSES",
    "SIMD_EQUIVALENT",
    "QUAD_EQUIVALENT",
    "unit_cycles",
]
