"""Instruction op-classes for the PowerPC 450 core and its Double Hummer FPU.

The Blue Gene/P compute chip pairs each PowerPC 450 core with a
dual-pipeline SIMD floating point unit ("Double Hummer").  The paper's
counters distinguish *single* (scalar, one double-precision result) from
*SIMD* (two-wide, primary+secondary register file) floating point
operations, and additionally counts the quadword loads/stores that the
SIMDizing compiler emits to feed the two pipes.

We do not model individual PowerPC opcodes; the UPC unit itself only
counts *classes* of operations (e.g. "FP SIMD add-sub"), so an op-class
enumeration is the right granularity for a counter-faithful model.
"""

from __future__ import annotations

import enum


class OpClass(enum.IntEnum):
    """Operation classes countable by the UPC unit.

    Values are contiguous so instruction mixes can be stored as dense
    vectors indexed by ``OpClass``.
    """

    # Integer / control pipe
    INT_ALU = 0        #: integer add/sub/logical/shift/compare
    INT_MUL = 1        #: integer multiply
    INT_DIV = 2        #: integer divide (microcoded, long latency)
    BRANCH = 3         #: conditional + unconditional branches
    # Load/store pipe
    LOAD = 4           #: scalar (byte..doubleword) load
    STORE = 5          #: scalar store
    QUADLOAD = 6       #: 16-byte load feeding both FPU register files
    QUADSTORE = 7      #: 16-byte store draining both FPU register files
    # Scalar ("single") FPU pipe operations
    FP_ADDSUB = 8      #: fadd/fsub
    FP_MUL = 9         #: fmul
    FP_DIV = 10        #: fdiv (iterative, blocking)
    FP_FMA = 11        #: fused multiply-add (fmadd/fmsub/fnmadd/fnmsub)
    # SIMD (two-wide) FPU operations
    FP_SIMD_ADDSUB = 12  #: parallel add-sub on both pipes
    FP_SIMD_MUL = 13     #: parallel multiply
    FP_SIMD_DIV = 14     #: parallel divide
    FP_SIMD_FMA = 15     #: parallel fused multiply-add
    # Everything else (mfspr, sync, cache ops, nops, ...)
    OTHER = 16

    @property
    def is_fp(self) -> bool:
        """True for any floating point arithmetic class."""
        return OpClass.FP_ADDSUB <= self <= OpClass.FP_SIMD_FMA

    @property
    def is_simd(self) -> bool:
        """True for the two-wide Double Hummer classes."""
        return OpClass.FP_SIMD_ADDSUB <= self <= OpClass.FP_SIMD_FMA

    @property
    def is_memory(self) -> bool:
        """True for classes that generate L1 data cache traffic."""
        return OpClass.LOAD <= self <= OpClass.QUADSTORE


#: Number of op classes (size of a dense mix vector).
NUM_OP_CLASSES = len(OpClass)

#: Floating point operations *completed* per instruction of each class.
#: An FMA performs two flops; SIMD doubles the per-instruction flop count.
FLOPS_PER_OP = {
    OpClass.FP_ADDSUB: 1,
    OpClass.FP_MUL: 1,
    OpClass.FP_DIV: 1,
    OpClass.FP_FMA: 2,
    OpClass.FP_SIMD_ADDSUB: 2,
    OpClass.FP_SIMD_MUL: 2,
    OpClass.FP_SIMD_DIV: 2,
    OpClass.FP_SIMD_FMA: 4,
}

#: Bytes moved to/from the L1 data cache per instruction of each class.
BYTES_PER_MEM_OP = {
    OpClass.LOAD: 8,
    OpClass.STORE: 8,
    OpClass.QUADLOAD: 16,
    OpClass.QUADSTORE: 16,
}

#: The scalar FP classes, in the order the paper's Figure 6 legend lists them.
SCALAR_FP_CLASSES = (
    OpClass.FP_ADDSUB,
    OpClass.FP_MUL,
    OpClass.FP_FMA,
    OpClass.FP_DIV,
)

#: The SIMD FP classes, in Figure 6 legend order.
SIMD_FP_CLASSES = (
    OpClass.FP_SIMD_ADDSUB,
    OpClass.FP_SIMD_FMA,
    OpClass.FP_SIMD_MUL,
    OpClass.FP_SIMD_DIV,
)

#: All FP classes.
FP_CLASSES = SCALAR_FP_CLASSES + SIMD_FP_CLASSES

#: Map from a scalar FP class to the SIMD class the SIMDizer pairs it into.
SIMD_EQUIVALENT = {
    OpClass.FP_ADDSUB: OpClass.FP_SIMD_ADDSUB,
    OpClass.FP_MUL: OpClass.FP_SIMD_MUL,
    OpClass.FP_DIV: OpClass.FP_SIMD_DIV,
    OpClass.FP_FMA: OpClass.FP_SIMD_FMA,
}

#: Memory op fused by quad load/store generation (two scalar -> one quad).
QUAD_EQUIVALENT = {
    OpClass.LOAD: OpClass.QUADLOAD,
    OpClass.STORE: OpClass.QUADSTORE,
}
