"""Simulated MPI: communication phases costed on the machine's networks.

The runtime executes communication the way the NAS benchmarks drive it:
bulk-synchronous phases where every rank participates.  Each
:class:`~repro.compiler.ir.CommOp` is lowered to concrete messages
using the job's rank placement:

* **HALO** — each rank exchanges with its neighbours in a 3D rank-grid
  decomposition; co-resident partners (Virtual Node Mode!) communicate
  through the shared L3 instead of the torus;
* **ALLTOALL** — personalised all-to-all (FT's transpose): every rank
  sends an equal slice to every other rank;
* **PAIRWISE** — fixed-partner exchange (IS's ranking step);
* **ALLREDUCE / BROADCAST** — the collective tree network;
* **BARRIER** — the global barrier network.

Inter-node transfers also cost *memory traffic*: the torus DMA engines
stream message payloads through the L3, and a fraction spills to DDR.
Intra-node transfers stay in the shared L3 — one of the reasons the
paper measures a DDR-traffic ratio *below* 4x for neighbour-local
benchmarks in VNM (Figure 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..compiler.ir import CommKind, CommOp
from ..net import (
    BarrierNetwork,
    CollectiveNetwork,
    Message,
    TorusNetwork,
    TorusTopology,
)
from ..net.topology import partition_shape
from ..parallel import get_vectorize
from .process import JobPlacement

#: Cycles of software overhead for an intra-node (shared-memory) message.
SHM_OVERHEAD_CYCLES = 300.0
#: Shared-L3 copy bandwidth, bytes per cycle.
SHM_BYTES_PER_CYCLE = 4.0
#: Fraction of inter-node message bytes that cross the DDR interface
#: (payloads staged through L3; the rest is consumed before eviction).
COMM_DDR_FRACTION = 0.5
#: L3 line size for converting comm bytes to DDR line transfers.
_LINE = 128
#: Below this many messages the vectorized lowering isn't worth its
#: array setup (mirrors the torus phase-engine threshold).
_VECTOR_MIN_TRIPLES = 16


@dataclass
class CommResult:
    """Cost and events of one communication phase (all repeats)."""

    cycles_per_rank: float = 0.0
    torus_events: Dict[int, Dict[str, int]] = field(default_factory=dict)
    collective_events: Dict[str, int] = field(default_factory=dict)
    #: extra DDR line transfers per node caused by message staging
    ddr_lines_per_node: Dict[int, int] = field(default_factory=dict)
    intra_node_bytes: int = 0
    inter_node_bytes: int = 0

    # ------------------------------------------------------------------
    # JSON round trip (the shared cache tier persists costed phases)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-serialisable form; exact (floats survive json)."""
        return {
            "cycles_per_rank": self.cycles_per_rank,
            "torus_events": {str(node): dict(events) for node, events
                             in self.torus_events.items()},
            "collective_events": dict(self.collective_events),
            "ddr_lines_per_node": {str(node): lines for node, lines
                                   in self.ddr_lines_per_node.items()},
            "intra_node_bytes": self.intra_node_bytes,
            "inter_node_bytes": self.inter_node_bytes,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CommResult":
        """Rebuild a phase saved by :meth:`to_dict` (node ids re-int'd
        after JSON stringified the dict keys)."""
        return cls(
            cycles_per_rank=data["cycles_per_rank"],
            torus_events={int(node): dict(events) for node, events
                          in data["torus_events"].items()},
            collective_events=dict(data["collective_events"]),
            ddr_lines_per_node={int(node): lines for node, lines
                                in data["ddr_lines_per_node"].items()},
            intra_node_bytes=data["intra_node_bytes"],
            inter_node_bytes=data["inter_node_bytes"],
        )


class SimMPI:
    """Lower CommOps to messages and cost them on the networks."""

    def __init__(self, placement: JobPlacement, topology: TorusTopology,
                 torus: TorusNetwork, collective: CollectiveNetwork,
                 barrier: BarrierNetwork):
        self.placement = placement
        self.topology = topology
        self.torus = torus
        self.collective = collective
        self.barrier = barrier
        self._rank_grid = partition_shape(placement.num_ranks)
        self._node_by_rank: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # rank-grid neighbours for halo exchanges
    # ------------------------------------------------------------------
    def _rank_coords(self, rank: int) -> Tuple[int, int, int]:
        x_dim, y_dim, _ = self._rank_grid
        return (rank % x_dim, (rank // x_dim) % y_dim,
                rank // (x_dim * y_dim))

    def _rank_at(self, coord: Tuple[int, int, int]) -> int:
        x_dim, y_dim, _ = self._rank_grid
        x, y, z = coord
        return x + y * x_dim + z * x_dim * y_dim

    def halo_partners(self, rank: int, wanted: int) -> List[int]:
        """Up to ``wanted`` distinct neighbour ranks in the 3D rank grid."""
        coords = self._rank_coords(rank)
        partners: List[int] = []
        for axis in range(3):
            for step in (+1, -1):
                if len(partners) >= wanted:
                    return partners
                size = self._rank_grid[axis]
                if size == 1:
                    continue
                n = list(coords)
                n[axis] = (n[axis] + step) % size
                partner = self._rank_at(tuple(n))
                if partner != rank and partner not in partners:
                    partners.append(partner)
        return partners

    # ------------------------------------------------------------------
    # lowering
    # ------------------------------------------------------------------
    def _messages_for(self, op: CommOp) -> List[Tuple[int, int, int]]:
        """(src_rank, dst_rank, bytes) triples for one repeat of ``op``."""
        p = self.placement
        if op.kind is CommKind.HALO:
            out = []
            for rank in range(p.num_ranks):
                partners = self.halo_partners(rank, op.neighbors)
                if not partners:
                    continue
                per_partner = op.bytes_per_rank // len(partners)
                out.extend((rank, q, per_partner) for q in partners)
            return out
        if op.kind is CommKind.ALLTOALL:
            n = p.num_ranks
            if n == 1:
                return []
            slice_bytes = op.bytes_per_rank // (n - 1)
            return [(r, q, slice_bytes)
                    for r in range(n) for q in range(n) if q != r]
        if op.kind is CommKind.PAIRWISE:
            out = []
            for rank in range(p.num_ranks):
                partner = rank ^ op.partner_stride
                if partner < p.num_ranks and partner != rank:
                    out.append((rank, partner, op.bytes_per_rank))
            return out
        raise ValueError(f"{op.kind} is not a point-to-point pattern")

    def _message_arrays(self, op: CommOp):
        """(src, dst, bytes) int64 arrays for one repeat of ``op``.

        The array twin of :meth:`_messages_for`, in the identical
        message order.  ALLTOALL — the only pattern whose message count
        is quadratic in ranks — is built directly as arrays; the others
        are converted from the scalar lowering.
        """
        if op.kind is CommKind.ALLTOALL:
            n = self.placement.num_ranks
            if n == 1:
                empty = np.zeros(0, dtype=np.int64)
                return empty, empty, empty.copy()
            slice_bytes = op.bytes_per_rank // (n - 1)
            ranks = np.arange(n, dtype=np.int64)
            src = np.repeat(ranks, n - 1)
            # row-major with the diagonal removed: for each r, every
            # q != r in ascending order — the scalar loop's order
            dst = np.broadcast_to(ranks, (n, n))[~np.eye(n, dtype=bool)]
            size = np.full(src.shape, slice_bytes, dtype=np.int64)
            return src, dst, size
        arr = np.asarray(self._messages_for(op),
                         dtype=np.int64).reshape(-1, 3)
        return arr[:, 0], arr[:, 1], arr[:, 2]

    def _rank_to_node(self) -> np.ndarray:
        """Per-rank home node, cached (placement is fixed per job)."""
        if self._node_by_rank is None:
            p = self.placement
            self._node_by_rank = np.fromiter(
                (p.node_of(r) for r in range(p.num_ranks)),
                dtype=np.int64, count=p.num_ranks)
        return self._node_by_rank

    def _cost_triples(self, triples: List[Tuple[int, int, int]],
                      balanced: bool, result: CommResult):
        """Per-message reference lowering (the oracle engine)."""
        torus_messages: List[Message] = []
        intra_cycles_per_rank: Dict[int, float] = {}
        for src, dst, size in triples:
            if size == 0:
                continue
            src_node = self.placement.node_of(src)
            dst_node = self.placement.node_of(dst)
            if src_node == dst_node:
                # shared-memory path: L3 copy, no torus, no DDR
                result.intra_node_bytes += size
                intra_cycles_per_rank[src] = (
                    intra_cycles_per_rank.get(src, 0.0)
                    + SHM_OVERHEAD_CYCLES + size / SHM_BYTES_PER_CYCLE)
            else:
                result.inter_node_bytes += size
                torus_messages.append(Message(src_node, dst_node, size))
                lines = int(size * COMM_DDR_FRACTION) // _LINE
                for node in (src_node, dst_node):
                    result.ddr_lines_per_node[node] = (
                        result.ddr_lines_per_node.get(node, 0) + lines)
        phase = self.torus.run_phase(torus_messages, balanced=balanced)
        intra_max = max(intra_cycles_per_rank.values(), default=0.0)
        return phase, intra_max

    def _cost_arrays(self, src_r: np.ndarray, dst_r: np.ndarray,
                     size: np.ndarray, balanced: bool,
                     result: CommResult):
        """Batched lowering; byte-identical to :meth:`_cost_triples`.

        Integer accounting (bytes, DDR lines) commutes exactly; the
        only float accumulation — per-rank shared-memory cycles — is
        replayed as a loop over just the intra-node messages, in the
        scalar message order, so every intermediate rounding matches.
        """
        live = size > 0
        src_r, dst_r, size = src_r[live], dst_r[live], size[live]
        node_of = self._rank_to_node()
        src_node = node_of[src_r]
        dst_node = node_of[dst_r]
        intra = src_node == dst_node

        # shared-memory path: exact float replay (few messages — only
        # co-resident pairs land here)
        intra_cycles_per_rank: Dict[int, float] = {}
        for src, sz in zip(src_r[intra].tolist(), size[intra].tolist()):
            intra_cycles_per_rank[src] = (
                intra_cycles_per_rank.get(src, 0.0)
                + SHM_OVERHEAD_CYCLES + sz / SHM_BYTES_PER_CYCLE)
        result.intra_node_bytes += int(size[intra].sum())

        inter = ~intra
        isrc, idst = src_node[inter], dst_node[inter]
        isize = size[inter]
        result.inter_node_bytes += int(isize.sum())
        # DDR staging lines, charged to both endpoints.  int(size *
        # fraction) truncates toward zero; astype(int64) of the same
        # float64 product truncates identically for non-negative sizes.
        lines = (isize * COMM_DDR_FRACTION).astype(np.int64) // _LINE
        ids = np.empty(2 * isrc.size, dtype=np.int64)
        ids[0::2] = isrc
        ids[1::2] = idst
        vals = np.repeat(lines, 2)
        if ids.size:
            acc = np.zeros(int(node_of.max()) + 1, dtype=np.int64)
            np.add.at(acc, ids, vals)
            uniq, first_seen = np.unique(ids, return_index=True)
            for node in uniq[np.argsort(first_seen, kind="stable")]:
                node = int(node)
                result.ddr_lines_per_node[node] = (
                    result.ddr_lines_per_node.get(node, 0)
                    + int(acc[node]))
        phase = self.torus.run_phase_arrays(isrc, idst, isize,
                                            balanced=balanced)
        intra_max = max(intra_cycles_per_rank.values(), default=0.0)
        return phase, intra_max

    def run(self, op: CommOp) -> CommResult:
        """Cost one CommOp (including its ``repeats``)."""
        result = CommResult()
        if op.kind in (CommKind.ALLREDUCE, CommKind.BROADCAST):
            coll = (self.collective.allreduce(op.bytes_per_rank)
                    if op.kind is CommKind.ALLREDUCE
                    else self.collective.broadcast(op.bytes_per_rank))
            result.cycles_per_rank = coll.cycles * op.repeats
            result.collective_events = {
                name: count * op.repeats
                for name, count in self.collective.events(coll).items()}
            return result
        if op.kind is CommKind.BARRIER:
            # symmetric BSP ranks arrive together: pure hardware latency
            result.cycles_per_rank = (self.barrier.hardware_latency
                                      * op.repeats)
            return result

        balanced = op.kind is CommKind.ALLTOALL
        if get_vectorize():
            src_r, dst_r, size = self._message_arrays(op)
            if src_r.size >= _VECTOR_MIN_TRIPLES:
                phase, intra_max = self._cost_arrays(
                    src_r, dst_r, size, balanced, result)
            else:
                triples = list(zip(src_r.tolist(), dst_r.tolist(),
                                   size.tolist()))
                phase, intra_max = self._cost_triples(
                    triples, balanced, result)
        else:
            phase, intra_max = self._cost_triples(
                self._messages_for(op), balanced, result)
        result.cycles_per_rank = (max(phase.cycles, intra_max)
                                  * op.repeats)
        result.torus_events = {
            node: {name: count * op.repeats
                   for name, count in events.items()}
            for node, events in self.torus.phase_events(phase).items()}
        result.ddr_lines_per_node = {
            node: lines * op.repeats
            for node, lines in result.ddr_lines_per_node.items()}
        result.intra_node_bytes *= op.repeats
        result.inter_node_bytes *= op.repeats
        return result
