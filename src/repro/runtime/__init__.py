"""The MPI-like job runtime over the simulated machine."""

from .machine import Job, JobResult, Machine, run_job
from .mpi import CommResult, SimMPI
from .process import JobPlacement, RankPlacement, place_ranks

__all__ = [
    "Machine",
    "Job",
    "JobResult",
    "run_job",
    "SimMPI",
    "CommResult",
    "place_ranks",
    "JobPlacement",
    "RankPlacement",
]
