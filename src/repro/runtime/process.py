"""Rank placement: MPI ranks onto nodes and process slots.

BG/P's default mapping places consecutive ranks on the same node first
(filling the mode's process slots), then walks the torus — which is
what gives Virtual Node Mode its communication locality: with 4 ranks
per node, a rank's nearest neighbours in rank space are often
co-resident and their messages never touch the torus.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from ..node.modes import OperatingMode


@dataclass(frozen=True)
class RankPlacement:
    """Where one MPI rank runs."""

    rank: int
    node: int
    slot: int  #: process slot on the node (0 .. processes_per_node-1)


@dataclass
class JobPlacement:
    """Placement of a whole job."""

    mode: OperatingMode
    num_ranks: int
    num_nodes: int
    ranks: List[RankPlacement]

    def node_of(self, rank: int) -> int:
        return self.ranks[rank].node

    def slot_of(self, rank: int) -> int:
        return self.ranks[rank].slot

    def ranks_on_node(self, node: int) -> List[int]:
        """Ranks resident on ``node``, in slot order."""
        by_node = self.__dict__.get("_by_node")
        if by_node is None:
            by_node = self.slots_by_node()
            self.__dict__["_by_node"] = by_node
        return by_node.get(node, [])

    def is_intra_node(self, a: int, b: int) -> bool:
        """True when two ranks share a node (their messages skip the torus)."""
        return self.node_of(a) == self.node_of(b)

    def slots_by_node(self) -> Dict[int, List[int]]:
        """node -> resident ranks, for every populated node."""
        out: Dict[int, List[int]] = {}
        for placement in self.ranks:
            out.setdefault(placement.node, []).append(placement.rank)
        return out


def place_ranks(num_ranks: int, mode: OperatingMode,
                num_nodes: int | None = None) -> JobPlacement:
    """Block placement of ``num_ranks`` ranks under ``mode``.

    ``num_nodes`` defaults to the minimum partition that holds the
    ranks; passing more nodes models a partly-filled partition.
    """
    if num_ranks <= 0:
        raise ValueError(f"need at least one rank, got {num_ranks}")
    ppn = mode.processes_per_node
    needed = math.ceil(num_ranks / ppn)
    if num_nodes is None:
        num_nodes = needed
    elif num_nodes < needed:
        raise ValueError(
            f"{num_ranks} ranks in {mode.value} need >= {needed} nodes, "
            f"got {num_nodes}")
    ranks = [RankPlacement(rank=r, node=r // ppn, slot=r % ppn)
             for r in range(num_ranks)]
    return JobPlacement(mode=mode, num_ranks=num_ranks,
                        num_nodes=num_nodes, ranks=ranks)
