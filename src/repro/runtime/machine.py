"""Whole-machine simulation: partitions, jobs, and the BSP engine.

A :class:`Machine` is a partition of compute nodes in a chosen
operating mode; a :class:`Job` runs an SPMD :class:`Program` on it with
the counter library linked in (MPI_Init/Finalize hooks), producing a
:class:`JobResult` with the elapsed time, per-rank times, and the full
cross-node counter aggregation from which every paper metric derives.

Execution model: the NAS benchmarks are bulk-synchronous and symmetric
across ranks, so the engine (1) charges every rank its compute work
through the node model (which handles L3 sharing, interference and DDR
port contention among co-resident ranks), then (2) charges every
communication phase at its network cost, then (3) takes the slowest
rank as the job's elapsed time.  Phase-by-phase interleaving is not
simulated — for symmetric SPMD programs the aggregate is identical.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..compiler.ir import Program
from ..core.metrics import (
    fp_profile,
    total_flops,
)
from ..core.mpi_hooks import CounterSession
from ..core.postprocess import Aggregation
from .. import faults as _faults
from ..isa.latency import CORE_CLOCK_HZ
from ..mem import NodeMemoryConfig
from ..net import (
    BarrierNetwork,
    CollectiveNetwork,
    EthernetIOModel,
    JTAGController,
    Personality,
    TorusNetwork,
    TorusTopology,
)
from ..node import ComputeNode, LoopWork, OperatingMode, ProcessWork
from .. import checkpoint as _checkpoint
from .. import markers as _markers
from ..obs import metrics as _metrics
from ..obs import timeline as _timeline
from ..obs.tracer import span as _span
from ..parallel import (
    cache_context,
    get_jobs,
    parallel_map,
    set_vectorize,
    worker_shared,
)
from .mpi import CommResult, SimMPI
from .process import JobPlacement, place_ranks

_JOBS = _metrics.counter("runtime.jobs")
_BSP_PHASES = _metrics.counter("runtime.bsp_phases")
_NODE_CLASSES = _metrics.counter("runtime.node_classes")
_NODE_CLASS_HITS = _metrics.counter("runtime.node_class_hits")
_COMM_HITS = _metrics.counter("runtime.comm_cache_hits")
_COMM_MISSES = _metrics.counter("runtime.comm_cache_misses")
_SAMPLED_NODES = _metrics.counter("runtime.sampled_nodes")
_CLASS_TIER_HITS = _metrics.counter("runtime.node_class_tier_hits")
_COMM_TIER_HITS = _metrics.counter("runtime.comm_tier_hits")

#: Cross-job cache of costed communication phases.  A comm phase is a
#: pure function of (comm ops, rank count, mode, partition size) — the
#: memory configuration never enters it — so L3/prefetch sweep points
#: of the same benchmark share one entry.
_COMM_CACHE: "Dict[Tuple, List]" = {}
_COMM_CACHE_MAX = 64


def clear_comm_cache() -> None:
    """Drop all cached communication phases (tests use this)."""
    _COMM_CACHE.clear()


class Machine:
    """A BG/P partition: nodes + networks in one operating mode."""

    def __init__(self, num_nodes: int,
                 mode: OperatingMode = OperatingMode.SMP1,
                 mem_config: Optional[NodeMemoryConfig] = None):
        if num_nodes <= 0:
            raise ValueError(f"partition needs >= 1 node, got {num_nodes}")
        self.mode = mode
        self.mem_config = mem_config or NodeMemoryConfig()
        self.topology = TorusTopology.for_nodes(num_nodes)
        self.nodes = [ComputeNode(node_id=i, mode=mode,
                                  mem_config=self.mem_config)
                      for i in range(num_nodes)]
        self.torus = TorusNetwork(self.topology)
        self.collective = CollectiveNetwork(num_nodes)
        self.barrier = BarrierNetwork(num_nodes)
        self.io = EthernetIOModel()
        # the control plane boots every node with the personality that
        # matches this partition's configuration (the paper's "svchost
        # options while booting a node", Section VIII)
        self.jtag = JTAGController()
        personality = Personality(
            l3_size_bytes=self.mem_config.l3.size_bytes,
            l2_prefetch_depth=self.mem_config.prefetcher.depth,
            mode_name=mode.name,
        )
        for node_id in range(num_nodes):
            self.jtag.load_personality(node_id, personality)
        self.boot_cycles = self.jtag.boot(list(range(num_nodes)))

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def max_ranks(self) -> int:
        return self.num_nodes * self.mode.processes_per_node


def _program_to_work(program: Program) -> ProcessWork:
    """Lower a compiled Program to the node model's work description."""
    loops = [
        LoopWork(mix=loop.total_mix(), streams=loop.streams,
                 traversals=loop.executions,
                 serial_fraction=loop.serial_fraction)
        for loop in program.loops()
    ]
    return ProcessWork(loops=loops)


def _simulate_node_class(mode: OperatingMode,
                         mem_config: NodeMemoryConfig,
                         work: ProcessWork,
                         residents: int,
                         vectorize: bool = True
                         ) -> Tuple[List[float], Dict[str, int]]:
    """Pool target: simulate one node equivalence class from scratch.

    Builds a throwaway node with the class's configuration, runs the
    class's work, and returns only what the job engine replicates to the
    class members: the per-slot compute cycles and the named counter
    pulses.  ``vectorize`` carries the parent's engine switch across
    the process-pool boundary (workers inherit only the env default).
    """
    set_vectorize(vectorize)
    node = ComputeNode(node_id=0, mode=mode, mem_config=mem_config)
    result = node.run([work] * residents)
    return result.process_cycles, result.events


def _simulate_node_class_shared(residents: int
                                ) -> Tuple[List[float], Dict[str, int]]:
    """Pool target: simulate one node class from hoisted batch context.

    The class context that is invariant across one job's fan-out — the
    operating mode, the memory configuration and the lowered program
    work — is shipped once per worker via ``parallel_map(shared=...)``
    and read back here, so each task's pickled payload is just the
    resident count (a few dozen bytes instead of the multi-kilobyte
    lowered program; ``BENCH_sweep_batch.json`` records the before and
    after sizes).  The engine switches travel in the same initializer.
    """
    mode, mem_config, work = worker_shared()
    node = ComputeNode(node_id=0, mode=mode, mem_config=mem_config)
    result = node.run([work] * residents)
    return result.process_cycles, result.events


@dataclass
class JobResult:
    """Everything one job run produced."""

    program_name: str
    flags_label: str
    mode: OperatingMode
    placement: JobPlacement
    elapsed_cycles: float
    compute_cycles_per_rank: List[float]
    comm_cycles_per_rank: float
    aggregation: Aggregation
    dump_paths: List[str] = field(default_factory=list)
    #: cost of shipping the counter dumps over the I/O path; it happens
    #: after monitoring stopped, so it lengthens the job but never
    #: perturbs the counts (paper, Section IV)
    dump_io_cycles: float = 0.0
    #: job-level sampled telemetry (only when sampling was enabled via
    #: ``Job(..., sample_every=N)`` or an installed timeline config)
    timeline: Optional[_timeline.JobTimeline] = None

    # ------------------------------------------------------------------
    # whole-machine metric helpers
    # ------------------------------------------------------------------
    def scaled_totals(self) -> Dict[str, int]:
        """Estimated whole-machine event totals.

        The 512-event node-card split means each event was monitored on
        a *subset* of nodes; symmetric SPMD workloads let us scale the
        per-node mean back up to the full partition.
        """
        n = self.placement.num_nodes
        return {name: int(round(stats.mean * n))
                for name, stats in self.aggregation.stats.items()}

    @property
    def elapsed_seconds(self) -> float:
        return self.elapsed_cycles / CORE_CLOCK_HZ

    def _group_metric(self, metric: str) -> float:
        """Evaluate one BGP_BASE metric over the machine-wide totals,
        with the job's elapsed cycles as the rate base."""
        from ..groups import get_group
        return get_group("BGP_BASE").evaluate(
            self.scaled_totals(),
            params={"cycles": self.elapsed_cycles},
            only=(metric,))[metric]

    def total_flops(self) -> float:
        """Machine-wide floating point operations."""
        return total_flops(self.scaled_totals())

    def mflops_total(self) -> float:
        """Machine-wide MFLOPS over the elapsed time."""
        return self._group_metric("mflops")

    def mflops_per_node(self) -> float:
        """Delivered MFLOPS per chip (the Figure 14 metric)."""
        return self.mflops_total() / self.placement.num_nodes

    def ddr_traffic_lines(self) -> float:
        """Machine-wide L3<->DDR line transfers (Figures 11/12)."""
        return self._group_metric("ddr_lines")

    def ddr_traffic_bytes(self) -> float:
        return self._group_metric("ddr_bytes")

    def ddr_traffic_lines_per_node(self) -> float:
        return self.ddr_traffic_lines() / self.placement.num_nodes

    def fp_profile(self) -> Dict[str, float]:
        """Machine-wide dynamic FP instruction mix (Figure 6)."""
        return fp_profile(self.scaled_totals())

    def simd_instructions(self) -> int:
        return self._group_metric("simd_instructions")

    def l3_miss_ratio(self) -> float:
        return self._group_metric("l3_miss_rate")

    # ------------------------------------------------------------------
    # JSON round trip (the checkpoint/--resume layer)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-serialisable form holding every derived-metric input.

        Dump paths (session-scoped temp files) and the timeline (absent
        on memoized sweep runs) are deliberately dropped: a resumed
        process could not use either.
        """
        return {
            "program_name": self.program_name,
            "flags_label": self.flags_label,
            "mode": self.mode.name,
            "num_ranks": self.placement.num_ranks,
            "num_nodes": self.placement.num_nodes,
            "elapsed_cycles": self.elapsed_cycles,
            "compute_cycles_per_rank": list(self.compute_cycles_per_rank),
            "comm_cycles_per_rank": self.comm_cycles_per_rank,
            "dump_io_cycles": self.dump_io_cycles,
            "aggregation": {
                "set_id": self.aggregation.set_id,
                "nodes_by_mode": {str(mode): nodes for mode, nodes
                                  in self.aggregation.nodes_by_mode.items()},
                "stats": {name: [s.minimum, s.maximum, s.mean, s.total,
                                 s.node_count]
                          for name, s in self.aggregation.stats.items()},
            },
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "JobResult":
        """Rebuild a result saved by :meth:`to_dict`.

        The placement is re-derived from (ranks, mode, nodes) — block
        placement is deterministic, so the rebuilt object answers every
        metric query identically to the original.
        """
        mode = OperatingMode[data["mode"]]
        agg = data["aggregation"]
        return cls(
            program_name=data["program_name"],
            flags_label=data["flags_label"],
            mode=mode,
            placement=place_ranks(data["num_ranks"], mode,
                                  data["num_nodes"]),
            elapsed_cycles=data["elapsed_cycles"],
            compute_cycles_per_rank=list(data["compute_cycles_per_rank"]),
            comm_cycles_per_rank=data["comm_cycles_per_rank"],
            aggregation=Aggregation.from_stats(
                agg["set_id"], agg["nodes_by_mode"], agg["stats"]),
            dump_io_cycles=data["dump_io_cycles"],
        )


class Job:
    """One SPMD application run on a machine partition.

    ``memoize`` controls the execution engine: when True (default)
    nodes are grouped into equivalence classes and each class is
    simulated once, with counter deltas replicated to the members, and
    communication phases are reused from the cross-job comm cache; when
    False every node is simulated separately and every phase is costed
    from scratch (the legacy path, kept for baseline benchmarking and
    for verifying the memoized engine's results are identical).

    ``sample_every`` turns on job-level telemetry: a monitoring thread
    (:class:`repro.obs.timeline.NodeTimelineSampler`) is attached to
    every monitored node and samples the configured event set at that
    cycle period; the rolled-up :class:`repro.obs.timeline.JobTimeline`
    lands on ``JobResult.timeline``.  ``None`` (default) defers to the
    process-global config installed by ``--sample-every`` (usually:
    sampling off, zero overhead).
    """

    def __init__(self, machine: Machine, program: Program, num_ranks: int,
                 memoize: bool = True,
                 sample_every: Optional[int] = None):
        if num_ranks > machine.max_ranks:
            raise ValueError(
                f"{num_ranks} ranks exceed the partition's "
                f"{machine.max_ranks} slots ({machine.num_nodes} nodes, "
                f"{machine.mode.value})")
        self.machine = machine
        self.program = program
        self.num_ranks = num_ranks
        self.memoize = memoize
        self.sample_every = sample_every

    def run(self, counter_modes: Tuple[int, int] = (0, 2),
            dump_dir: Optional[str] = None) -> JobResult:
        """Execute the job with the counter library linked in.

        ``counter_modes`` are the two 256-event sets split across the
        node cards (default: processor/FPU/L1 events + L3/DDR events,
        which the paper's figures need).
        """
        machine = self.machine
        _JOBS.inc()
        job_span = _span("job", program=self.program.name,
                         flags=self.program.flags_label,
                         mode=machine.mode.name, ranks=self.num_ranks,
                         nodes=machine.num_nodes)
        placement = place_ranks(self.num_ranks, machine.mode,
                                machine.num_nodes)
        used_nodes = sorted(placement.slots_by_node())
        nodes = [machine.nodes[i] for i in used_nodes]

        session = CounterSession(nodes, primary_mode=counter_modes[0],
                                 secondary_mode=counter_modes[1],
                                 dump_dir=dump_dir)
        session.mpi_init()

        # fault injection (off unless an injector is installed): each
        # run of this job is one RAS "attempt", so a harness retry after
        # a NodeFailure re-rolls the dice instead of dying identically
        injector = _faults.get()
        fault_ctx = None
        if injector is not None and injector.config.any_enabled:
            fault_ctx = injector.begin_job(
                (self.program.name, self.program.flags_label,
                 machine.mode.name, self.num_ranks, machine.num_nodes,
                 machine.mem_config.l3.size_bytes))

        # job-level telemetry: one shadow sampler per monitored node,
        # created per node class below so the memoized engine samples
        # each class representative once and replicates the series
        sampling = _timeline.resolve_config(self.sample_every)
        samplers: Dict[int, _timeline.NodeTimelineSampler] = {}

        # ---- compute: one simulation per node equivalence class -------
        # SPMD placement gives every resident rank the same work, so two
        # nodes with the same configuration and resident count perform
        # byte-identical compute.  Simulate each class once and replicate
        # the counter deltas to the other members via pulse_events —
        # O(classes) node simulations instead of O(nodes).
        work = _program_to_work(self.program)
        compute_cycles: List[float] = [0.0] * self.num_ranks
        job_key = (self.program.name, self.program.flags_label,
                   machine.mode.name, machine.mem_config)
        with _span("phase.compute", nodes=len(nodes)) as compute_span:
            classes: Dict[Tuple, List[ComputeNode]] = {}
            for node in nodes:
                residents = placement.ranks_on_node(node.node_id)
                if self.memoize:
                    key = (len(residents),) + job_key
                else:  # legacy: every node is its own class
                    key = (len(residents), node.node_id) + job_key
                classes.setdefault(key, []).append(node)
            keys = list(classes)
            simulated: Dict[int, bool] = {}
            # the shared tier (when installed) persists node-class
            # results across processes; fault-injected runs bypass it
            # in both directions so perturbed state never poisons it
            tier = (_checkpoint.get_shared_tier()
                    if self.memoize and fault_ctx is None else None)
            tier_ctx = cache_context() if tier is not None else None
            class_results: Dict[Tuple, Tuple[List[float],
                                             Dict[str, int]]] = {}
            pending = keys
            if tier is not None:
                pending = []
                for key in keys:
                    payload = tier.get("machine.node_class",
                                       (tier_ctx, key))
                    if payload is not None:
                        class_results[key] = (payload["cycles"],
                                              payload["events"])
                        _CLASS_TIER_HITS.inc()
                    else:
                        pending.append(key)
            if get_jobs() > 1 and len(pending) > 1:
                # fan the distinct classes out over the process pool;
                # every member (including the representative) gets the
                # replicated deltas afterwards
                outs = parallel_map(
                    _simulate_node_class_shared,
                    [(key[0],) for key in pending],
                    label="node_classes",
                    shared=(machine.mode, machine.mem_config, work))
                class_results.update(zip(pending, outs))
            else:
                for key in pending:
                    representative = classes[key][0]
                    result = representative.run([work] * key[0])
                    class_results[key] = (result.process_cycles,
                                          result.events)
                    simulated[representative.node_id] = True
            if tier is not None:
                for key in pending:
                    cycles, events = class_results[key]
                    tier.put("machine.node_class", (tier_ctx, key),
                             {"cycles": list(cycles),
                              "events": dict(events)})
            _NODE_CLASSES.inc(len(keys))
            _NODE_CLASS_HITS.inc(len(nodes) - len(keys))
            rep_samplers: Dict[Tuple, _timeline.NodeTimelineSampler] = {}
            for node in nodes:
                if fault_ctx is not None:
                    # node-level faults land on every member's own UPC
                    # unit, not just the class representative's; a
                    # node_failure raises NodeFailure out of the job
                    fault_ctx.visit_node(node, phase="compute")
                residents = placement.ranks_on_node(node.node_id)
                if self.memoize:
                    key = (len(residents),) + job_key
                else:
                    key = (len(residents), node.node_id) + job_key
                cycles, events = class_results[key]
                if not simulated.get(node.node_id):
                    node.pulse_events(events)
                for slot, rank in enumerate(residents):
                    compute_cycles[rank] = cycles[slot]
                if sampling is not None:
                    # nodes of the same class split across counter modes
                    # by the node-card policy, so the sampling class is
                    # (compute class, counter mode); the representative
                    # samples the compute phase once, members branch
                    upc_mode = node.upc.mode
                    if not sampling.events_in_mode(upc_mode):
                        continue
                    group = (key, upc_mode)
                    rep = rep_samplers.get(group)
                    if rep is None:
                        rep = _timeline.NodeTimelineSampler(
                            node.node_id, upc_mode, sampling)
                        rep.feed("compute", events, max(cycles))
                        rep_samplers[group] = rep
                    samplers[node.node_id] = rep.branch(node.node_id)
            _SAMPLED_NODES.inc(len(samplers))
            compute_span.set("cycles", max(compute_cycles, default=0.0))
            compute_span.set("classes", len(keys))
            compute_span.set("replicated", len(nodes) - len(keys))

        # ---- communication: phase by phase on the networks ------------
        # phase costs are pure functions of (ops, placement, partition),
        # independent of the memory configuration, so sweep points that
        # differ only in L3/prefetch settings replay the cached phases
        mpi = SimMPI(placement, machine.topology, machine.torus,
                     machine.collective, machine.barrier)
        comm_ops = list(self.program.comms())
        comm_key: Optional[Tuple] = None
        cached_phases = None
        if self.memoize:
            comm_key = (tuple(comm_ops), self.num_ranks,
                        machine.mode.name, machine.num_nodes)
            cached_phases = _COMM_CACHE.get(comm_key)
            if cached_phases is None and tier is not None:
                payload = tier.get("machine.comm_phase",
                                   (tier_ctx, comm_key))
                if payload is not None:
                    cached_phases = [CommResult.from_dict(d)
                                     for d in payload]
                    _COMM_TIER_HITS.inc()
                    # seed the in-process cache so sibling sweep
                    # points skip even the disk read
                    while len(_COMM_CACHE) >= _COMM_CACHE_MAX:
                        _COMM_CACHE.pop(next(iter(_COMM_CACHE)))
                    _COMM_CACHE[comm_key] = cached_phases
            (_COMM_HITS if cached_phases is not None
             else _COMM_MISSES).inc()
        computed_phases: List = []
        comm_cycles = 0.0
        comm_ddr: Dict[int, int] = {}
        used_node_set = set(used_nodes)
        assignment = machine.mode.core_assignment()
        for op_index, op in enumerate(comm_ops):
            _BSP_PHASES.inc()
            with _span("phase.comm", kind=op.kind.value,
                       bytes_per_rank=op.bytes_per_rank,
                       repeats=op.repeats) as comm_span:
                if cached_phases is not None:
                    comm = cached_phases[op_index]
                    comm_span.set("cached", True)
                else:
                    comm = mpi.run(op)
                    computed_phases.append(comm)
                comm_span.set("cycles", comm.cycles_per_rank)
                # an injected link stall is charged outside the phase
                # cost so the cross-job comm cache stays clean
                stall = 0
                if fault_ctx is not None:
                    stall = fault_ctx.link_stall(op_index, op.kind.value)
                    if stall:
                        comm_span.set("ras_stall_cycles", stall)
            comm_cycles += comm.cycles_per_rank + stall
            for node_id, events in comm.torus_events.items():
                if node_id in used_node_set:
                    machine.nodes[node_id].pulse_events(events)
            if comm.collective_events:
                for node in nodes:
                    node.pulse_events(comm.collective_events)
            for node_id, lines in comm.ddr_lines_per_node.items():
                comm_ddr[node_id] = comm_ddr.get(node_id, 0) + lines
            if samplers:
                phase_wait = int(round(comm.cycles_per_rank))
                for node in nodes:
                    sampler = samplers.get(node.node_id)
                    if sampler is None:
                        continue
                    phase_events: Dict[str, int] = {}
                    for source in (
                            comm.torus_events.get(node.node_id, {}),
                            comm.collective_events):
                        for name, count in source.items():
                            phase_events[name] = (
                                phase_events.get(name, 0) + count)
                    lines = comm.ddr_lines_per_node.get(node.node_id, 0)
                    if lines:
                        # message staging traffic for this phase
                        phase_events["BGP_DDR0_WRITE"] = (
                            phase_events.get("BGP_DDR0_WRITE", 0)
                            + lines // 2)
                        phase_events["BGP_DDR1_READ"] = (
                            phase_events.get("BGP_DDR1_READ", 0)
                            + lines - lines // 2)
                    if phase_wait > 0:
                        # comm wait elapses on every rank-hosting core
                        residents = placement.ranks_on_node(node.node_id)
                        for slot in range(len(residents)):
                            for core in assignment[slot]:
                                cname = f"BGP_PU{core}_CYCLES"
                                phase_events[cname] = (
                                    phase_events.get(cname, 0)
                                    + phase_wait)
                    sampler.feed(f"comm.{op.kind.value}", phase_events,
                                 comm.cycles_per_rank)
        if comm_key is not None and cached_phases is None:
            while len(_COMM_CACHE) >= _COMM_CACHE_MAX:
                _COMM_CACHE.pop(next(iter(_COMM_CACHE)))
            _COMM_CACHE[comm_key] = computed_phases
            if tier is not None:
                tier.put("machine.comm_phase", (tier_ctx, comm_key),
                         [phase.to_dict() for phase in computed_phases])

        # message staging traffic: split lines across the controllers
        for node_id, lines in comm_ddr.items():
            machine.nodes[node_id].pulse_events({
                "BGP_DDR0_WRITE": lines // 2,
                "BGP_DDR1_READ": lines - lines // 2,
            })

        # comm wait time elapses on every core hosting a rank
        comm_int = int(round(comm_cycles))
        if comm_int > 0:
            for node in nodes:
                residents = placement.ranks_on_node(node.node_id)
                # one merged delivery per node: the per-slot cores are
                # disjoint, so the counter state is identical to a
                # pulse per core
                node.pulse_events(
                    {f"BGP_PU{core}_CYCLES": comm_int
                     for slot in range(len(residents))
                     for core in assignment[slot]})

        with _span("phase.dump", files=len(session.dump_paths)
                   ) as dump_span:
            session.mpi_finalize()
            dump_bytes = [0] * machine.num_nodes
            for path in session.dump_paths:
                node_id = int(path.rsplit("node", 1)[1].split(".")[0])
                dump_bytes[node_id] = os.path.getsize(path)
            dump_io = machine.io.write_phase(dump_bytes).cycles
            dump_span.set("cycles", dump_io)

        elapsed = max(c + comm_cycles for c in compute_cycles)
        job_span.set("cycles", elapsed)
        job_span.end()

        timeline = None
        if samplers:
            for sampler in samplers.values():
                # the dump ships after monitoring stopped: no events,
                # but the job's clock keeps running through it
                sampler.feed("dump", {}, dump_io)
            timeline = _timeline.JobTimeline(
                program=self.program.name,
                flags=self.program.flags_label,
                mode_name=machine.mode.name,
                num_nodes=len(nodes),
                num_ranks=self.num_ranks,
                sample_every=sampling.sample_every,
                elapsed_cycles=elapsed,
                nodes={node_id: sampler.finish()
                       for node_id, sampler in sorted(samplers.items())},
                percentiles=sampling.percentiles,
                wall_start_us=getattr(job_span, "start_us", None),
                wall_dur_us=getattr(job_span, "dur_us", None),
            )
            if _timeline.get_config() is not None:
                # CLI-installed sampling: register with the recorder so
                # --trace/--json runs export timeline.jsonl at exit
                _timeline.record(timeline)
        result = JobResult(
            program_name=self.program.name,
            flags_label=self.program.flags_label,
            mode=machine.mode,
            placement=placement,
            elapsed_cycles=elapsed,
            compute_cycles_per_rank=compute_cycles,
            comm_cycles_per_rank=comm_cycles,
            aggregation=session.aggregation(),
            dump_paths=session.dump_paths,
            dump_io_cycles=dump_io,
            timeline=timeline,
        )
        if _markers.active():
            # credit this job's machine-wide counter view to every open
            # marker region; the disabled path is this one bool check
            _markers.credit(result.scaled_totals(), elapsed)
        return result


def run_job(program: Program, num_ranks: int, num_nodes: int,
            mode: OperatingMode,
            mem_config: Optional[NodeMemoryConfig] = None,
            counter_modes: Tuple[int, int] = (0, 2)) -> JobResult:
    """Convenience one-shot: build a machine, run the program, return."""
    machine = Machine(num_nodes, mode=mode, mem_config=mem_config)
    return Job(machine, program, num_ranks).run(
        counter_modes=counter_modes)
