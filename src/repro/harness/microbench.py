"""The machine-characterization experiment: microbenchmarks + counters.

Runs the calibration microkernels on one node and reports the machine
axes the NAS characterizations decompose into: peak flops, sustainable
memory bandwidth, the latency curve, and the memory mountain over
footprints.  Expected values have closed forms (documented on each
kernel), so this doubles as a self-test of the whole node model.
"""

from __future__ import annotations

from typing import Sequence

from ..compiler import O5, O_base, compile_program
from ..core.metrics import L3_LINE_BYTES
from ..isa.latency import CORE_CLOCK_HZ, PEAK_NODE_GFLOPS
from ..node import OperatingMode
from ..micro import cache_probe, peak_flops, pointer_chase, stream_triad
from ..runtime import Job, Machine
from .report import ExperimentResult

KB = 1024
MB = 1024 * 1024


def _run_single(program, mode=OperatingMode.SMP1,
                counter_modes=(0, 2)):
    """One rank on one node.

    A single node only monitors ``counter_modes[0]`` (nothing to split
    across node cards), so memory-side kernels pass ``(2, 0)`` to put
    the L3/DDR event set on the node.
    """
    machine = Machine(1, mode=mode)
    return Job(machine, program, 1).run(counter_modes=counter_modes)


def ext_microbench() -> ExperimentResult:
    """One-node machine characterization from the microkernels."""
    result = ExperimentResult(
        experiment_id="ext-microbench",
        title="Machine characterization via calibration microkernels",
        headers=["kernel", "metric", "measured", "expected"],
    )

    # ---- peak flops (with and without the SIMDizer) -------------------
    peak = _run_single(compile_program(peak_flops(), O5()))
    gflops = peak.mflops_total() / 1e3
    result.rows.append(["peak_flops -O5", "GFLOPS/core", gflops,
                        PEAK_NODE_GFLOPS / 4])
    result.summary["peak_fraction"] = gflops / (PEAK_NODE_GFLOPS / 4)
    scalar = _run_single(compile_program(peak_flops(), O_base()))
    result.rows.append(["peak_flops -O", "GFLOPS/core",
                        scalar.mflops_total() / 1e3,
                        PEAK_NODE_GFLOPS / 8])
    result.summary["simd_speedup"] = (gflops * 1e3
                                      / scalar.mflops_total())

    # ---- stream bandwidth ---------------------------------------------
    triad = _run_single(compile_program(stream_triad(), O5()),
                        counter_modes=(2, 0))
    gb_per_s = (triad.ddr_traffic_bytes()
                / triad.elapsed_seconds / 1e9)
    result.rows.append(["stream_triad", "DDR GB/s", gb_per_s,
                        "~3-13 (latency-bound stream model)"])
    result.summary["stream_gbs"] = gb_per_s

    # ---- pointer-chase latency ----------------------------------------
    chase = _run_single(compile_program(pointer_chase(), O_base()))
    cycles_per_access = (chase.elapsed_cycles
                         / pointer_chase().loops()[0].trip_count)
    result.rows.append(["pointer_chase 16MB", "cycles/access",
                        cycles_per_access,
                        "~(1-overlap) x DDR latency (>=70)"])
    result.summary["chase_latency"] = cycles_per_access

    # ---- the memory mountain ------------------------------------------
    for footprint in (16 * KB, 256 * KB, 4 * MB, 32 * MB):
        probe = _run_single(compile_program(cache_probe(footprint),
                                            O5()))
        loads = cache_probe(footprint).loops()[0].trip_count * 50
        bytes_per_cycle = loads * 8 / probe.elapsed_cycles
        label = (f"{footprint // KB}KB" if footprint < MB
                 else f"{footprint // MB}MB")
        result.rows.append([f"cache_probe {label}", "bytes/cycle",
                            bytes_per_cycle, "falls with footprint"])
        result.summary[f"probe_{label}"] = bytes_per_cycle
    result.notes.append(
        "expected values are closed-form (see repro.micro docstrings); "
        f"clock = {CORE_CLOCK_HZ / 1e6:.0f} MHz, line = "
        f"{L3_LINE_BYTES} B")
    return result
