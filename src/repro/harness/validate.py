"""Audit experiments: model-vs-simulator and fault-detection checks.

``model_validation`` wraps :mod:`repro.mem.validation` as an experiment
so the CLI and the benchmark harness can regenerate the audit table
that backs every whole-machine number in the reproduction.

``fault_audit`` turns :mod:`repro.faults` loose on a small job, one
fault class at a time at rate 1.0, and asserts each injected condition
is *detected* by the machinery the paper relies on: a dead node aborts
the job, wrap storms and SRAM corruption trip ``validate_dumps`` or the
cross-run statistics, DDR error bursts show up as scrub read traffic,
link stalls lengthen the run.  It also replays one campaign twice to
prove the seeded injection is deterministic.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from .. import faults as _faults
from ..compiler import O3, compile_program
from ..core.postprocess import ValidationError
from ..faults import FaultConfig, NodeFailure, RASEvent
from ..mem.validation import validate_benchmark_loops
from ..node import OperatingMode
from ..npb import BENCHMARK_ORDER, build_benchmark
from ..runtime import Job, JobResult, Machine
from .report import ExperimentResult
from .sweep import vnm_nodes


def model_validation(benchmarks: Sequence[str] = tuple(BENCHMARK_ORDER),
                     tolerance: float = 0.35) -> ExperimentResult:
    """Cross-engine agreement for every benchmark's loops.

    Each loop is miniaturised, replayed exactly through the LRU
    simulator, and compared against the analytical model at L1, L2 and
    the L3/DDR interface (the level every paper figure depends on).
    """
    result = ExperimentResult(
        experiment_id="validate",
        title="Analytical model vs exact LRU simulator "
              "(max relative error per level)",
        headers=["benchmark", "loops", "L1 err", "L2 err", "L3/DDR err",
                 "agrees"],
    )
    worst_overall = 0.0
    for code in benchmarks:
        cases = validate_benchmark_loops(code)
        per_level = {"L1": 0.0, "L2": 0.0, "L3/DDR": 0.0}
        agrees = True
        for case in cases:
            for lc in case.levels:
                if max(lc.exact_misses, lc.model_misses) >= 64:
                    per_level[lc.level] = max(per_level[lc.level],
                                              lc.relative_error)
                agrees = agrees and lc.agrees(tolerance)
        result.rows.append([code, len(cases), per_level["L1"],
                            per_level["L2"], per_level["L3/DDR"],
                            "yes" if agrees else "NO"])
        result.summary[f"agrees_{code}"] = float(agrees)
        worst_overall = max(worst_overall, *per_level.values())
    result.summary["worst_error"] = worst_overall
    result.notes.append(
        f"agreement tolerance {tolerance:.0%}; loops are miniaturised "
        "so the exact replay stays fast (regimes are preserved)")
    return result


# ---------------------------------------------------------------------------
# fault-injection audit
# ---------------------------------------------------------------------------
def _fault_probe(code: str, num_ranks: int,
                 problem_class: str) -> JobResult:
    """One small, deliberately un-memoised job for the fault campaign.

    MG class A by default: it has real communication phases (so link
    stalls are visible in the elapsed time) and real DDR traffic.
    Never memoised — a cached result would have been computed *without*
    the currently-installed injector.
    """
    program = compile_program(
        build_benchmark(code, num_ranks=num_ranks,
                        problem_class=problem_class), O3())
    machine = Machine(vnm_nodes(num_ranks), mode=OperatingMode.VNM)
    return Job(machine, program, num_ranks).run()


def _campaign(config: FaultConfig, code: str, num_ranks: int,
              problem_class: str
              ) -> Tuple[Optional[JobResult], Optional[Exception],
                         Tuple[RASEvent, ...]]:
    """Run the probe under one fault config; capture outcome + RAS log."""
    injector = _faults.install(config)
    try:
        try:
            result = _fault_probe(code, num_ranks, problem_class)
            return result, None, tuple(injector.events)
        except (NodeFailure, ValidationError) as exc:
            return None, exc, tuple(injector.events)
    finally:
        _faults.uninstall()


def fault_audit(code: str = "MG", num_ranks: int = 8,
                problem_class: str = "A",
                seed: int = 7) -> ExperimentResult:
    """Detection audit: every injected fault class must be caught.

    One clean reference run, then one campaign per fault class at
    rate 1.0, each checked against the detector that should fire;
    finally the ``node_failure`` campaign is replayed to assert the
    seeded injection is deterministic (same seed → same RAS log).
    """
    result = ExperimentResult(
        experiment_id="fault-audit",
        title="Fault injection vs detection "
              f"({code} class {problem_class}, {num_ranks} ranks, "
              f"seed {seed})",
        headers=["fault class", "ras events", "severity",
                 "detected by", "detected"],
    )
    prior = _faults.uninstall()
    try:
        clean = _fault_probe(code, num_ranks, problem_class)

        def check(kind: str, config: FaultConfig,
                  detector) -> None:
            run, error, events = _campaign(config, code, num_ranks,
                                           problem_class)
            detected, mechanism = detector(run, error)
            ours = [e for e in events if e.kind == kind]
            severity = ours[0].severity if ours else "-"
            result.rows.append([kind, len(ours), severity, mechanism,
                                "yes" if detected else "NO"])
            result.summary[f"detected_{kind}"] = float(detected)

        check("node_failure",
              FaultConfig(seed=seed, node_failure_rate=1.0),
              lambda run, error: (isinstance(error, NodeFailure),
                                  "job abort (NodeFailure)"))
        check("wrap_storm",
              FaultConfig(seed=seed, wrap_storm_rate=1.0),
              lambda run, error: (isinstance(error, ValidationError),
                                  "validate_dumps near-wrap check"))
        check("sram_bit_flip",
              FaultConfig(seed=seed, sram_flip_rate=1.0),
              lambda run, error: (
                  isinstance(error, ValidationError)
                  or (run is not None
                      and run.scaled_totals() != clean.scaled_totals()),
                  "cross-run counter statistics"))
        check("ddr_correctable",
              FaultConfig(seed=seed, ddr_error_rate=1.0),
              lambda run, error: (
                  run is not None
                  and run.ddr_traffic_lines() > clean.ddr_traffic_lines(),
                  "DDR scrub-traffic delta"))
        check("link_stall",
              FaultConfig(seed=seed, link_stall_rate=1.0),
              lambda run, error: (
                  run is not None
                  and run.elapsed_cycles > clean.elapsed_cycles,
                  "elapsed-time delta"))

        # determinism: an identical campaign must produce an identical
        # RAS event log, event for event
        config = FaultConfig(seed=seed, node_failure_rate=1.0)
        _, _, first = _campaign(config, code, num_ranks, problem_class)
        _, _, second = _campaign(config, code, num_ranks, problem_class)
        deterministic = first == second and len(first) > 0
        result.rows.append(["(determinism)", len(first), "-",
                            "identical replayed RAS log",
                            "yes" if deterministic else "NO"])
        result.summary["deterministic"] = float(deterministic)
    finally:
        _faults._injector = prior
    result.notes.append(
        "injection is off by default: with no installed FaultConfig "
        "the engine's behaviour is bit-identical to a clean build")
    return result
