"""The model-audit experiment: analytical engine vs exact simulator.

Wraps :mod:`repro.mem.validation` as an experiment so the CLI and the
benchmark harness can regenerate the audit table that backs every
whole-machine number in the reproduction.
"""

from __future__ import annotations

from typing import Sequence

from ..mem.validation import validate_benchmark_loops
from ..npb import BENCHMARK_ORDER
from .report import ExperimentResult


def model_validation(benchmarks: Sequence[str] = tuple(BENCHMARK_ORDER),
                     tolerance: float = 0.35) -> ExperimentResult:
    """Cross-engine agreement for every benchmark's loops.

    Each loop is miniaturised, replayed exactly through the LRU
    simulator, and compared against the analytical model at L1, L2 and
    the L3/DDR interface (the level every paper figure depends on).
    """
    result = ExperimentResult(
        experiment_id="validate",
        title="Analytical model vs exact LRU simulator "
              "(max relative error per level)",
        headers=["benchmark", "loops", "L1 err", "L2 err", "L3/DDR err",
                 "agrees"],
    )
    worst_overall = 0.0
    for code in benchmarks:
        cases = validate_benchmark_loops(code)
        per_level = {"L1": 0.0, "L2": 0.0, "L3/DDR": 0.0}
        agrees = True
        for case in cases:
            for lc in case.levels:
                if max(lc.exact_misses, lc.model_misses) >= 64:
                    per_level[lc.level] = max(per_level[lc.level],
                                              lc.relative_error)
                agrees = agrees and lc.agrees(tolerance)
        result.rows.append([code, len(cases), per_level["L1"],
                            per_level["L2"], per_level["L3/DDR"],
                            "yes" if agrees else "NO"])
        result.summary[f"agrees_{code}"] = float(agrees)
        worst_overall = max(worst_overall, *per_level.values())
    result.summary["worst_error"] = worst_overall
    result.notes.append(
        f"agreement tolerance {tolerance:.0%}; loops are miniaturised "
        "so the exact replay stays fast (regimes are preserved)")
    return result
