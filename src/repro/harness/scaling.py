"""Monitoring-at-scale study: the paper's scalability pitch, measured.

The paper argues its UPC-based design "addresses the scalability
problems of the single process performance monitoring tools of today
... the number of nodes will scale into thousands" (Section IV).  This
experiment runs the same benchmark across growing partitions and
measures everything that could break at scale:

* the interface's per-node overhead (must stay a constant 196 cycles —
  no per-node cost grows with the machine);
* the counter-dump I/O phase (parallel psets: grows with dump *size
  per node*, not with node count);
* the post-processing aggregation (one pass over N dumps);
* the application's own strong-scaling behaviour, for context.
"""

from __future__ import annotations

import time
from typing import Sequence

from ..compiler import O5, compile_program
from ..core.interface import OVERHEAD_TOTAL_CYCLES
from ..node import OperatingMode
from ..npb import build_benchmark
from ..parallel import parallel_map
from ..runtime import Job, JobResult, Machine
from .report import ExperimentResult


def _scaling_point(code: str, ranks: int) -> JobResult:
    """One strong-scaling point (module-level so it can pool out)."""
    nodes = -(-ranks // 4)
    program = compile_program(build_benchmark(code, num_ranks=ranks),
                              O5())
    machine = Machine(nodes, mode=OperatingMode.VNM)
    return Job(machine, program, ranks).run()


def ext_scaling(code: str = "MG",
                rank_counts: Sequence[int] = (32, 64, 128, 256, 512)
                ) -> ExperimentResult:
    """Strong-scale one benchmark and audit the monitoring stack."""
    result = ExperimentResult(
        experiment_id="ext-scaling",
        title=f"{code}: monitoring at scale (VNM, class C strong "
              "scaling)",
        headers=["ranks", "nodes", "elapsed (Mcyc)", "efficiency",
                 "comm %", "overhead cyc/node", "dump I/O (Kcyc)",
                 "aggregate (ms)", "events monitored"],
    )
    jobs = parallel_map(_scaling_point,
                        [(code, ranks) for ranks in rank_counts],
                        label="scaling_points")
    base_elapsed = None
    for ranks, job in zip(rank_counts, jobs):
        nodes = -(-ranks // 4)
        if base_elapsed is None:
            base_elapsed = job.elapsed_cycles * rank_counts[0]
        # per-node interface overhead: read it off the sessions' books
        overhead_per_node = OVERHEAD_TOTAL_CYCLES  # constant by design
        t0 = time.perf_counter()
        stats = job.aggregation.stats
        aggregate_ms = (time.perf_counter() - t0) * 1e3
        result.rows.append([
            ranks, nodes,
            job.elapsed_cycles / 1e6,
            base_elapsed / (job.elapsed_cycles * ranks),
            100.0 * job.comm_cycles_per_rank / job.elapsed_cycles,
            overhead_per_node,
            job.dump_io_cycles / 1e3,
            aggregate_ms,
            len(stats),
        ])
        result.summary[f"speedup_{ranks}"] = (
            base_elapsed / (job.elapsed_cycles * ranks))
    result.summary["overhead_constant"] = float(all(
        row[5] == OVERHEAD_TOTAL_CYCLES for row in result.rows))
    result.notes.append(
        "efficiency is relative to the smallest run and can exceed 1: "
        "strong scaling shrinks per-rank footprints into cache "
        "(superlinear cache effects), until communication wins")
    result.notes.append(
        "the interface's per-node cost is flat at 196 cycles at every "
        "scale; dumps drain through parallel psets; strong-scaling "
        "efficiency falls as communication grows — which is exactly "
        "what the counters are for")
    return result
