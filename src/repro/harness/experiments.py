"""One runner per paper table/figure.

Every function regenerates the corresponding figure's rows/series on
the simulated machine and returns an
:class:`~repro.harness.report.ExperimentResult`; ``render()`` prints
the same information the paper plots.  The benchmark harness under
``benchmarks/`` wraps these runners one-to-one, and EXPERIMENTS.md
records paper-vs-measured for each.

Every runner here is resumable for free: the expensive work funnels
through the memoised sweep runners in :mod:`~repro.harness.sweep`,
which ``--resume DIR`` backs with an on-disk
:class:`~repro.checkpoint.CheckpointStore` — an interrupted figure
restarts from its completed sweep points, and a finished figure's whole
row table is replayed from the experiment-level checkpoint without
rerunning anything.
"""

from __future__ import annotations

import functools
from typing import Dict, List, Optional, Sequence

from ..compiler import O5, compiler_sweep
from ..obs import metrics as _metrics
from ..obs.tracer import span as _span
from ..core.interface import (
    BGPCounterInterface,
    OVERHEAD_TOTAL_CYCLES,
)
from ..core.counters import UPCUnit
from ..core.metrics import PROFILE_LABELS
from ..node import mode_table
from ..npb import BENCHMARK_ORDER
from .report import ExperimentResult
from .sweep import (
    PAPER_L3_SIZES_MB,
    run_vnm,
    vnm_smp_pair,
    warm_pairs,
    warm_runs,
)

#: Figure 9 plots these benchmarks, Figure 10 the rest.
FIG9_BENCHMARKS = ("FT", "EP", "CG", "MG")
FIG10_BENCHMARKS = ("IS", "LU", "SP", "BT")

_RUNS = _metrics.counter("harness.experiment_runs")


def traced_experiment(experiment_id: str):
    """Wrap a figure runner in a tracer span named after the figure."""
    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            _RUNS.inc()
            with _span(f"experiment:{experiment_id}", id=experiment_id):
                return fn(*args, **kwargs)
        return wrapper
    return decorate


# ---------------------------------------------------------------------------
# Figure 3 — modes of operation table
# ---------------------------------------------------------------------------
@traced_experiment("fig03")
def fig03_modes() -> ExperimentResult:
    """The operating-modes table (processes / threads per node)."""
    result = ExperimentResult(
        experiment_id="fig03",
        title="Modes of operation of a Blue Gene/P node",
        headers=["mode", "processes/node", "threads/process",
                 "cores used"],
    )
    for row in mode_table():
        result.rows.append([row.mode, row.processes_per_node,
                            row.threads_per_process, row.cores_used])
    return result


# ---------------------------------------------------------------------------
# Figure 6 — dynamic FP instruction profile
# ---------------------------------------------------------------------------
@traced_experiment("fig06")
def fig06_instruction_profile(problem_class: str = "C"
                              ) -> ExperimentResult:
    """FP instruction mix of the NAS suite (fractions per FP class).

    Paper configuration: class C, 128 processes on 32 nodes VNM (121
    for SP/BT), best optimization.  Expected shape: MG and FT dominated
    by SIMD add-sub + SIMD FMA; the others by single FMA.
    """
    labels = list(PROFILE_LABELS.values())
    result = ExperimentResult(
        experiment_id="fig06",
        title="Dynamic FP instruction profile of the NAS benchmarks",
        headers=["benchmark"] + labels,
    )
    simd_heavy: Dict[str, float] = {}
    warm_runs((code, O5(), 8, problem_class) for code in BENCHMARK_ORDER)
    for code in BENCHMARK_ORDER:
        job = run_vnm(code, O5(), problem_class=problem_class)
        profile = job.fp_profile()
        result.rows.append([code] + [profile[label] for label in labels])
        simd_heavy[code] = sum(v for k, v in profile.items()
                               if k.startswith("SIMD"))
    result.summary = {f"simd_share_{c}": v for c, v in simd_heavy.items()}
    result.notes.append(
        "MG/FT should be SIMD-dominated; EP/CG/IS/LU/SP/BT single-FMA")
    return result


# ---------------------------------------------------------------------------
# Figures 7 & 8 — SIMD instructions vs compiler optimization
# ---------------------------------------------------------------------------
def _simd_vs_flags(code: str, figure_id: str) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id=figure_id,
        title=f"{code} - SIMD instructions for compiler optimizations",
        headers=["flags", "SIMD instructions (machine total)",
                 "SIMD share of FP"],
    )
    counts: List[float] = []
    warm_runs((code, flags) for flags in compiler_sweep())
    for flags in compiler_sweep():
        job = run_vnm(code, flags)
        simd = job.simd_instructions()
        profile = job.fp_profile()
        share = sum(v for k, v in profile.items() if k.startswith("SIMD"))
        result.rows.append([flags.label, simd, share])
        counts.append(simd)
    result.summary = {
        "baseline_simd": counts[0],
        "best_simd": counts[-1],
    }
    result.notes.append(
        "-qarch=440d switches the SIMDizer on: the jump appears at "
        "'-O3 -qarch=440d' and grows at -O5 (IPA widens coverage)")
    return result


@traced_experiment("fig07")
def fig07_ft_simd() -> ExperimentResult:
    """FT's SIMD instruction count across the compiler sweep."""
    return _simd_vs_flags("FT", "fig07")


@traced_experiment("fig08")
def fig08_mg_simd() -> ExperimentResult:
    """MG's SIMD instruction count across the compiler sweep."""
    return _simd_vs_flags("MG", "fig08")


# ---------------------------------------------------------------------------
# Figures 9 & 10 — execution time vs compiler optimization
# ---------------------------------------------------------------------------
def _exec_time_vs_flags(benchmarks: Sequence[str],
                        figure_id: str) -> ExperimentResult:
    sweep = compiler_sweep()
    result = ExperimentResult(
        experiment_id=figure_id,
        title="Execution time vs compiler optimizations "
              f"({', '.join(benchmarks)})",
        headers=["benchmark"] + [f.label for f in sweep]
                + ["best/baseline"],
    )
    warm_runs((code, flags) for code in benchmarks for flags in sweep)
    for code in benchmarks:
        cycles = [run_vnm(code, flags).elapsed_cycles for flags in sweep]
        normalized = [c / cycles[0] for c in cycles]
        result.rows.append([code] + normalized + [normalized[-1]])
        result.summary[f"reduction_{code}"] = 1.0 - normalized[-1]
    result.notes.append(
        "series normalised to the -O -qstrict baseline; the paper "
        "reports up to ~60% reduction for FT and EP")
    return result


@traced_experiment("fig09")
def fig09_exec_time() -> ExperimentResult:
    """Execution time vs flags for FT, EP, CG, MG."""
    return _exec_time_vs_flags(FIG9_BENCHMARKS, "fig09")


@traced_experiment("fig10")
def fig10_exec_time() -> ExperimentResult:
    """Execution time vs flags for IS, LU, SP, BT."""
    return _exec_time_vs_flags(FIG10_BENCHMARKS, "fig10")


# ---------------------------------------------------------------------------
# Figure 11 — L3 size sweep
# ---------------------------------------------------------------------------
@traced_experiment("fig11")
def fig11_l3_sweep(benchmarks: Optional[Sequence[str]] = None
                   ) -> ExperimentResult:
    """DDR traffic per node vs L3 size (0..8 MB in 2 MB steps)."""
    benchmarks = list(benchmarks or BENCHMARK_ORDER)
    result = ExperimentResult(
        experiment_id="fig11",
        title="L3-DDR traffic vs L3 size (lines/node, normalised to 0MB)",
        headers=["benchmark"] + [f"{mb}MB" for mb in PAPER_L3_SIZES_MB]
                + ["L3 miss ratio @4MB"],
    )
    ratios_4mb: List[float] = []
    warm_runs((code, O5(), mb) for code in benchmarks
              for mb in PAPER_L3_SIZES_MB)
    for code in benchmarks:
        traffic = [run_vnm(code, O5(), l3_mb=mb).ddr_traffic_lines_per_node()
                   for mb in PAPER_L3_SIZES_MB]
        normalized = [t / traffic[0] for t in traffic]
        miss_ratio = run_vnm(code, O5(), l3_mb=4).l3_miss_ratio()
        ratios_4mb.append(miss_ratio)
        result.rows.append([code] + normalized + [miss_ratio])
    result.summary = {
        "mean_miss_ratio_4mb": sum(ratios_4mb) / len(ratios_4mb),
    }
    result.notes.append(
        "expected: a steep drop 0->2->4 MB, little benefit past 4 MB; "
        "the paper reports ~10% of L3 accesses missing at 4 MB")
    return result


# ---------------------------------------------------------------------------
# Figures 12-14 — Virtual Node Mode vs SMP/1
# ---------------------------------------------------------------------------
@traced_experiment("fig12")
def fig12_ddr_ratio() -> ExperimentResult:
    """DDR traffic per chip: VNM (4 procs/chip) over SMP/1 (1 proc)."""
    result = ExperimentResult(
        experiment_id="fig12",
        title="DDR traffic ratio: VNM (32 nodes) / SMP-1 (128 nodes, "
              "2MB L3)",
        headers=["benchmark", "traffic ratio"],
    )
    ratios = []
    warm_pairs(BENCHMARK_ORDER, O5())
    for code in BENCHMARK_ORDER:
        vnm, smp = vnm_smp_pair(code, O5())
        ratio = (vnm.ddr_traffic_lines_per_node()
                 / smp.ddr_traffic_lines_per_node())
        ratios.append(ratio)
        result.rows.append([code, ratio])
    result.summary = {
        "mean_ratio": sum(ratios) / len(ratios),
        "ft_ratio": ratios[BENCHMARK_ORDER.index("FT")],
        "is_ratio": ratios[BENCHMARK_ORDER.index("IS")],
    }
    result.notes.append(
        "paper: ~3x on average, with only FT and IS above 4x (memory "
        "port contention + cache interference)")
    return result


@traced_experiment("fig13")
def fig13_time_increase() -> ExperimentResult:
    """Per-process execution-time increase in VNM vs SMP/1."""
    result = ExperimentResult(
        experiment_id="fig13",
        title="Execution time increase per node: VNM vs SMP-1",
        headers=["benchmark", "time ratio", "increase %"],
    )
    increases = []
    warm_pairs(BENCHMARK_ORDER, O5())
    for code in BENCHMARK_ORDER:
        vnm, smp = vnm_smp_pair(code, O5())
        ratio = vnm.elapsed_cycles / smp.elapsed_cycles
        increases.append(ratio - 1.0)
        result.rows.append([code, ratio, (ratio - 1.0) * 100.0])
    result.summary = {
        "mean_increase": sum(increases) / len(increases),
        "max_increase": max(increases),
    }
    result.notes.append(
        "paper: ~30% on average — far below the 4x throughput gained; "
        "the memory-aggressive codes pay the most, EP (no memory, no "
        "comm) pays nothing")
    return result


@traced_experiment("fig14")
def fig14_mflops_ratio() -> ExperimentResult:
    """Delivered MFLOPS per chip: VNM over SMP/1."""
    result = ExperimentResult(
        experiment_id="fig14",
        title="MFLOPS per chip increase: VNM vs SMP-1",
        headers=["benchmark", "VNM MFLOPS/chip", "SMP MFLOPS/chip",
                 "ratio"],
    )
    ratios = []
    warm_pairs(BENCHMARK_ORDER, O5())
    for code in BENCHMARK_ORDER:
        vnm, smp = vnm_smp_pair(code, O5())
        ratio = vnm.mflops_per_node() / smp.mflops_per_node()
        ratios.append(ratio)
        result.rows.append([code, vnm.mflops_per_node(),
                            smp.mflops_per_node(), ratio])
    result.summary = {"mean_ratio": sum(ratios) / len(ratios)}
    result.notes.append(
        "paper: about 2.5x higher MFLOPS per chip using all four cores")
    return result


# ---------------------------------------------------------------------------
# Section IV — interface overhead sanity check
# ---------------------------------------------------------------------------
@traced_experiment("overhead")
def overhead_check() -> ExperimentResult:
    """Measure the interface's own cost, as the paper's sanity check.

    Initialize + start + stop around an empty region must cost exactly
    196 machine cycles, with the dump time excluded from the measured
    region.
    """
    upc = UPCUnit(node_id=0)
    cycles_seen: List[int] = []
    iface = BGPCounterInterface(upc, node_id=0,
                                cycle_sink=cycles_seen.append)
    iface.initialize(mode=0)
    iface.start(0)
    deltas = iface.stop(0)
    measured = sum(cycles_seen)
    result = ExperimentResult(
        experiment_id="overhead",
        title="Interface overhead sanity check (Section IV)",
        headers=["quantity", "cycles"],
        rows=[
            ["BGP_Initialize", 150],
            ["BGP_Start", 23],
            ["BGP_Stop", 23],
            ["total (measured)", measured],
            ["paper", 196],
        ],
        summary={"measured": float(measured),
                 "matches_paper": float(measured
                                        == OVERHEAD_TOTAL_CYCLES == 196)},
    )
    result.notes.append(
        f"empty region counted {int(deltas.sum())} events; the stop "
        "overhead lands outside the measured region by construction")
    return result


# ---------------------------------------------------------------------------
# telemetry smoke run (not a paper figure: CI's instrumented small job)
# ---------------------------------------------------------------------------
@traced_experiment("smoke")
def smoke_telemetry(benchmarks: Sequence[str] = ("MG", "EP")
                    ) -> ExperimentResult:
    """Small instrumented run exercising the full telemetry pipeline.

    Two class-A kernels on a 4-node VNM partition — seconds, not
    minutes — so ``--trace --sample-every N`` runs (CI's smoke step)
    produce every artifact: spans, metrics, sampled timelines, counter
    tracks, and a report.  With sampling off the jobs still run and the
    table simply reports telemetry as absent.
    """
    from ..obs import timeline as obs_timeline
    from .sweep import run_small_vnm

    result = ExperimentResult(
        experiment_id="smoke",
        title="Telemetry smoke run (class A, 16 ranks, 4 nodes VNM)",
        headers=["benchmark", "elapsed Mcycles", "MFLOPS/node",
                 "sampled nodes", "samples", "alerts", "anomalies"],
    )
    sampling = obs_timeline.get_config()
    for code in benchmarks:
        run = run_small_vnm(code, O5())
        timeline = run.timeline
        result.rows.append([
            code,
            round(run.elapsed_cycles / 1e6, 2),
            round(run.mflops_per_node(), 1),
            len(timeline.nodes) if timeline else 0,
            len(timeline.sample_grid()) if timeline else 0,
            len(timeline.alerts()) if timeline else 0,
            len(timeline.anomalies()) if timeline else 0,
        ])
    result.notes.append(
        f"sampling every {sampling.sample_every} cycles"
        if sampling else
        "sampling off — rerun with --sample-every N for timelines")
    return result


def smoke_markers(benchmarks: Sequence[str] = ("MG", "EP")
                  ) -> ExperimentResult:
    """Marker-region smoke run: per-region derived metrics.

    Wraps each kernel run in a named :func:`repro.markers.region`
    (all inside one enclosing ``smoke`` region), then reports every
    region's accumulated counter view through the active performance
    group.  With an artifact directory the region records also land in
    ``timeline.jsonl``, so the run report gains a "Marker regions"
    table and the trace gains ``region:<path>`` tracks.
    """
    from .. import markers
    from ..groups import get_active_group
    from .sweep import run_small_vnm

    result = ExperimentResult(
        experiment_id="smoke-markers",
        title="Marker-region smoke run (class A, 16 ranks, 4 nodes "
              "VNM)",
        headers=["region", "visits", "jobs", "Mcycles", "MFLOPS",
                 "DDR MB/s"],
    )
    with markers.region("smoke"):
        for code in benchmarks:
            with markers.region(code.lower()):
                run_small_vnm(code, O5())
    group = get_active_group()
    for rec in markers.export_records(group=group):
        derived = rec["derived"]
        result.rows.append([
            rec["region"],
            rec["visits"],
            rec["jobs"],
            round(rec["cycles"] / 1e6, 2),
            round(derived.get("mflops", 0.0), 1),
            round(derived.get("ddr_bytes_per_sec", 0.0) / 1e6, 1),
        ])
    result.notes.append(
        f"derived metrics via performance group {group.name}; region "
        "records are appended to timeline.jsonl when an artifact "
        "directory is given")
    return result


# ---------------------------------------------------------------------------
# everything
# ---------------------------------------------------------------------------
ALL_EXPERIMENTS = {
    "fig03": fig03_modes,
    "fig06": fig06_instruction_profile,
    "fig07": fig07_ft_simd,
    "fig08": fig08_mg_simd,
    "fig09": fig09_exec_time,
    "fig10": fig10_exec_time,
    "fig11": fig11_l3_sweep,
    "fig12": fig12_ddr_ratio,
    "fig13": fig13_time_increase,
    "fig14": fig14_mflops_ratio,
    "overhead": overhead_check,
}


def run_all(verbose: bool = False) -> Dict[str, ExperimentResult]:
    """Run every experiment; optionally print each as it finishes."""
    results: Dict[str, ExperimentResult] = {}
    for name, runner in ALL_EXPERIMENTS.items():
        results[name] = runner()
        if verbose:
            print(results[name].render())
            print()
    return results
