"""ASCII table / series rendering for experiment results.

The paper presents its results as bar charts; a terminal reproduction
prints the same rows and series as aligned text tables, with optional
normalisation (most of the paper's figures are ratios or baselines-
normalised series).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None,
                 float_format: str = "{:.3f}") -> str:
    """Render an aligned text table.

    Floats go through ``float_format``; everything else through
    ``str``.  Column widths adapt to content.
    """
    def cell(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(headers)} headers")
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) if i else c.ljust(w)
                         for i, (c, w) in enumerate(zip(cells, widths)))

    out: List[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def normalize_rows(rows: Sequence[Sequence[float]],
                   baseline_index: int = 0) -> List[List[float]]:
    """Normalise each row's numeric cells to one cell of that row.

    The paper's compiler figures plot execution time relative to the
    ``-O -qstrict`` baseline; this helper produces those series.
    """
    out = []
    for row in rows:
        base = row[baseline_index]
        if base == 0:
            raise ValueError("cannot normalise to a zero baseline")
        out.append([v / base for v in row])
    return out


def horizontal_bar(value: float, scale: float = 1.0,
                   max_width: int = 40) -> str:
    """A crude text bar for eyeballing series in the terminal."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    width = int(round(min(max(value / scale, 0.0), 1.0) * max_width))
    return "#" * width


@dataclass
class ExperimentResult:
    """One regenerated table/figure."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: free-form scalars worth asserting on (means, ratios, cycles)
    summary: Dict[str, float] = field(default_factory=dict)

    def render(self, float_format: str = "{:.3f}") -> str:
        text = format_table(self.headers, self.rows,
                            title=f"[{self.experiment_id}] {self.title}",
                            float_format=float_format)
        if self.notes:
            text += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        if self.summary:
            pairs = ", ".join(f"{k}={v:.4g}"
                              for k, v in self.summary.items())
            text += f"\n  summary: {pairs}"
        return text

    def to_dict(self) -> Dict[str, object]:
        """The result as plain JSON-ready data (the CSV's richer twin:
        it keeps the title, notes, and summary scalars the CSV drops)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [[_json_cell(v) for v in row] for row in self.rows],
            "notes": list(self.notes),
            "summary": {k: _json_cell(v)
                        for k, v in self.summary.items()},
        }

    def to_json(self, indent: int = 2) -> str:
        """The result serialised as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentResult":
        """Rebuild a result saved by :meth:`to_dict` (the ``--resume``
        layer replays finished experiments from these)."""
        return cls(
            experiment_id=data["experiment_id"],
            title=data["title"],
            headers=list(data["headers"]),
            rows=[list(row) for row in data["rows"]],
            notes=list(data["notes"]),
            summary=dict(data["summary"]),
        )


def _json_cell(value: object) -> object:
    """Coerce table cells (incl. numpy scalars) to JSON-safe values."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    item = getattr(value, "item", None)  # numpy scalar
    if callable(item):
        return item()
    return str(value)
