"""Experiment harness: one runner per paper table/figure."""

from .ablations import (
    ABLATION_EXPERIMENTS,
    ablation_balanced_alltoall,
    ablation_capacity_sharing,
    ablation_interference,
    ablation_multiplexing,
    ablation_prefetch_depth,
    ablation_write_stall,
    ext_hybrid_modes,
)
from .characterize import (
    WorkloadCharacter,
    characterization_table,
    characterize,
    render_character,
)
from .experiments import (
    ALL_EXPERIMENTS,
    fig03_modes,
    fig06_instruction_profile,
    fig07_ft_simd,
    fig08_mg_simd,
    fig09_exec_time,
    fig10_exec_time,
    fig11_l3_sweep,
    fig12_ddr_ratio,
    fig13_time_increase,
    fig14_mflops_ratio,
    overhead_check,
    run_all,
    smoke_markers,
    smoke_telemetry,
)
from .report import (
    ExperimentResult,
    format_table,
    horizontal_bar,
    normalize_rows,
)
from .batch import (
    PointSpec,
    pin_figure_working_set,
    prefill_figure_working_set,
    run_points,
)
from .microbench import ext_microbench
from .scaling import ext_scaling
from .validate import fault_audit, model_validation
from .sweep import (
    PAPER_L3_SIZES_MB,
    attach_resume,
    attach_runner_store,
    clear_caches,
    compiled_benchmark,
    detach_resume,
    run_scaled_vnm,
    run_smp1,
    run_vnm,
    vnm_nodes,
    vnm_smp_pair,
    warm_pairs,
    warm_runs,
)

__all__ = [
    "ALL_EXPERIMENTS",
    "ABLATION_EXPERIMENTS",
    "ablation_prefetch_depth",
    "ablation_interference",
    "ablation_write_stall",
    "ablation_capacity_sharing",
    "ablation_balanced_alltoall",
    "ablation_multiplexing",
    "ext_hybrid_modes",
    "WorkloadCharacter",
    "characterize",
    "characterization_table",
    "render_character",
    "model_validation",
    "fault_audit",
    "ext_scaling",
    "ext_microbench",
    "run_all",
    "fig03_modes",
    "fig06_instruction_profile",
    "fig07_ft_simd",
    "fig08_mg_simd",
    "fig09_exec_time",
    "fig10_exec_time",
    "fig11_l3_sweep",
    "fig12_ddr_ratio",
    "fig13_time_increase",
    "fig14_mflops_ratio",
    "overhead_check",
    "smoke_markers",
    "smoke_telemetry",
    "ExperimentResult",
    "format_table",
    "normalize_rows",
    "horizontal_bar",
    "run_vnm",
    "run_smp1",
    "run_scaled_vnm",
    "vnm_smp_pair",
    "vnm_nodes",
    "compiled_benchmark",
    "clear_caches",
    "attach_resume",
    "attach_runner_store",
    "detach_resume",
    "warm_runs",
    "warm_pairs",
    "PAPER_L3_SIZES_MB",
    "PointSpec",
    "run_points",
    "pin_figure_working_set",
    "prefill_figure_working_set",
    "experiment_catalog",
]


def experiment_catalog():
    """Every runnable experiment id -> runner, CLI and service alike.

    The paper figures plus the ablations and the extension/validation
    runners — the single catalog ``python -m repro`` dispatches on and
    ``python -m repro serve`` validates request ids against.
    """
    catalog = dict(ALL_EXPERIMENTS)
    catalog.update(ABLATION_EXPERIMENTS)
    catalog["characterize"] = characterization_table
    catalog["validate"] = model_validation
    catalog["ext-scaling"] = ext_scaling
    catalog["ext-microbench"] = ext_microbench
    catalog["smoke"] = smoke_telemetry
    catalog["smoke-markers"] = smoke_markers
    catalog["fault-audit"] = fault_audit
    return catalog
