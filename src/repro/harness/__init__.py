"""Experiment harness: one runner per paper table/figure."""

from .ablations import (
    ABLATION_EXPERIMENTS,
    ablation_balanced_alltoall,
    ablation_capacity_sharing,
    ablation_interference,
    ablation_multiplexing,
    ablation_prefetch_depth,
    ablation_write_stall,
    ext_hybrid_modes,
)
from .characterize import (
    WorkloadCharacter,
    characterization_table,
    characterize,
    render_character,
)
from .experiments import (
    ALL_EXPERIMENTS,
    fig03_modes,
    fig06_instruction_profile,
    fig07_ft_simd,
    fig08_mg_simd,
    fig09_exec_time,
    fig10_exec_time,
    fig11_l3_sweep,
    fig12_ddr_ratio,
    fig13_time_increase,
    fig14_mflops_ratio,
    overhead_check,
    run_all,
)
from .report import (
    ExperimentResult,
    format_table,
    horizontal_bar,
    normalize_rows,
)
from .microbench import ext_microbench
from .scaling import ext_scaling
from .validate import model_validation
from .sweep import (
    PAPER_L3_SIZES_MB,
    clear_caches,
    compiled_benchmark,
    run_smp1,
    run_vnm,
    vnm_nodes,
    vnm_smp_pair,
)

__all__ = [
    "ALL_EXPERIMENTS",
    "ABLATION_EXPERIMENTS",
    "ablation_prefetch_depth",
    "ablation_interference",
    "ablation_write_stall",
    "ablation_capacity_sharing",
    "ablation_balanced_alltoall",
    "ablation_multiplexing",
    "ext_hybrid_modes",
    "WorkloadCharacter",
    "characterize",
    "characterization_table",
    "render_character",
    "model_validation",
    "ext_scaling",
    "ext_microbench",
    "run_all",
    "fig03_modes",
    "fig06_instruction_profile",
    "fig07_ft_simd",
    "fig08_mg_simd",
    "fig09_exec_time",
    "fig10_exec_time",
    "fig11_l3_sweep",
    "fig12_ddr_ratio",
    "fig13_time_increase",
    "fig14_mflops_ratio",
    "overhead_check",
    "ExperimentResult",
    "format_table",
    "normalize_rows",
    "horizontal_bar",
    "run_vnm",
    "run_smp1",
    "vnm_smp_pair",
    "vnm_nodes",
    "compiled_benchmark",
    "clear_caches",
    "PAPER_L3_SIZES_MB",
]
