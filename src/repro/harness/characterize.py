"""Workload characterization reports — the paper's namesake output.

Rolls every counter-derived metric into one per-benchmark "character
sheet": the dynamic instruction mix, FP profile, achieved MFLOPS and
peak fraction, CPI, cache behaviour at every level, DDR bandwidth, and
the communication/computation split.  This is the deliverable the
paper's instrumentation exists to produce ("get a profound insight into
its execution"), packaged as a reusable API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..compiler import O5
from ..groups import get_group
from ..isa.latency import PEAK_NODE_GFLOPS
from ..npb import BENCHMARK_ORDER
from .report import ExperimentResult, format_table
from .sweep import run_vnm


@dataclass(frozen=True)
class WorkloadCharacter:
    """One benchmark's measured character (all from counters)."""

    benchmark: str
    mflops_per_node: float
    peak_fraction: float          #: of the 13.6 GFLOPS node peak
    cpi: float                    #: cycles per (completed) instruction
    fp_share: float               #: FP instructions / all instructions
    simd_share: float             #: SIMD / FP instructions
    memory_share: float           #: loads+stores / all instructions
    l1_miss_rate: float
    l2_prefetch_coverage: float
    l3_miss_ratio: float
    ddr_gb_per_sec: float         #: per node
    comm_fraction: float          #: comm cycles / elapsed cycles
    boundedness: str              #: "compute" | "memory" | "communication"


def characterize(code: str, problem_class: str = "C"
                 ) -> WorkloadCharacter:
    """Measure one benchmark's character in the paper configuration."""
    job = run_vnm(code, O5(), problem_class=problem_class)
    totals = job.scaled_totals()
    # second campaign: the L2/snoop event set (counter modes 1 and 3)
    l2_job = run_vnm(code, O5(), problem_class=problem_class,
                     counter_modes=(1, 3))
    totals.update({k: v for k, v in l2_job.scaled_totals().items()
                   if "_L2_" in k or "SNOOP" in k})

    def core_sum(suffix: str) -> int:
        return sum(totals.get(f"BGP_PU{c}_{suffix}", 0) for c in range(4))

    # every derived formula evaluates through the BGP_BASE group; only
    # characterization-specific shares are composed here
    vals = get_group("BGP_BASE").evaluate(totals, only=(
        "instructions", "total_cycles", "cpi", "fp_instructions",
        "simd_instructions", "l1d_read_miss_rate",
        "l2_prefetch_coverage", "l3_miss_rate"))
    instructions = vals["instructions"]
    cycles = vals["total_cycles"]
    fp = vals["fp_instructions"]
    simd = vals["simd_instructions"]
    memory_ops = sum(core_sum(s) for s in ("LOAD", "STORE", "QUADLOAD",
                                           "QUADSTORE"))

    mflops = job.mflops_per_node()
    stall = core_sum("STALL_MEM")
    comm_fraction = (job.comm_cycles_per_rank / job.elapsed_cycles
                     if job.elapsed_cycles else 0.0)
    mem_fraction = stall / cycles if cycles else 0.0
    if comm_fraction > max(mem_fraction, 0.35):
        boundedness = "communication"
    elif mem_fraction > 0.4:
        boundedness = "memory"
    else:
        boundedness = "compute"

    elapsed_seconds = job.elapsed_seconds
    ddr_bytes = job.ddr_traffic_bytes() / job.placement.num_nodes

    return WorkloadCharacter(
        benchmark=code,
        mflops_per_node=mflops,
        peak_fraction=mflops / (PEAK_NODE_GFLOPS * 1e3),
        cpi=vals["cpi"],
        fp_share=fp / instructions if instructions else 0.0,
        simd_share=simd / fp if fp else 0.0,
        memory_share=memory_ops / instructions if instructions else 0.0,
        l1_miss_rate=vals["l1d_read_miss_rate"],
        l2_prefetch_coverage=vals["l2_prefetch_coverage"],
        l3_miss_ratio=vals["l3_miss_rate"],
        ddr_gb_per_sec=(ddr_bytes / elapsed_seconds / 1e9
                        if elapsed_seconds else 0.0),
        comm_fraction=comm_fraction,
        boundedness=boundedness,
    )


def characterization_table(
        benchmarks: Sequence[str] = tuple(BENCHMARK_ORDER),
        problem_class: str = "C") -> ExperimentResult:
    """The suite-wide character sheet as an experiment result."""
    result = ExperimentResult(
        experiment_id="characterize",
        title="NAS suite workload characterization (class "
              f"{problem_class}, VNM, -O5 -qarch=440d)",
        headers=["benchmark", "MFLOPS/node", "peak %", "CPI",
                 "FP share", "SIMD share", "mem share", "L1 miss",
                 "L3 miss", "DDR GB/s", "comm %", "bound by"],
    )
    characters: List[WorkloadCharacter] = []
    for code in benchmarks:
        c = characterize(code, problem_class)
        characters.append(c)
        result.rows.append([
            c.benchmark, c.mflops_per_node, c.peak_fraction * 100,
            c.cpi, c.fp_share, c.simd_share, c.memory_share,
            c.l1_miss_rate, c.l3_miss_ratio, c.ddr_gb_per_sec,
            c.comm_fraction * 100, c.boundedness,
        ])
    result.summary = {
        "mean_peak_fraction": sum(c.peak_fraction
                                  for c in characters) / len(characters),
        "compute_bound_count": float(sum(
            1 for c in characters if c.boundedness == "compute")),
    }
    result.notes.append(
        "every column derives from UPC counters alone — the point of "
        "the paper's instrumentation")
    return result


def render_character(c: WorkloadCharacter) -> str:
    """A one-benchmark character sheet for terminals."""
    rows = [
        ["MFLOPS per node", f"{c.mflops_per_node:,.0f} "
         f"({c.peak_fraction:.1%} of peak)"],
        ["CPI", f"{c.cpi:.2f}"],
        ["instruction mix", f"{c.fp_share:.0%} FP "
         f"({c.simd_share:.0%} SIMD), {c.memory_share:.0%} memory"],
        ["L1 miss rate", f"{c.l1_miss_rate:.1%}"],
        ["L2 prefetch coverage", f"{c.l2_prefetch_coverage:.1%}"],
        ["L3 miss ratio", f"{c.l3_miss_ratio:.1%}"],
        ["DDR bandwidth", f"{c.ddr_gb_per_sec:.2f} GB/s per node"],
        ["communication", f"{c.comm_fraction:.1%} of time"],
        ["bound by", c.boundedness],
    ]
    return format_table(["metric", "value"], rows,
                        title=f"workload character: {c.benchmark}")
