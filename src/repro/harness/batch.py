"""Cross-point batched sweep engine.

The per-point engine (:class:`repro.runtime.Job`) already dedupes node
equivalence classes *within* one sweep point; a paper-figure sweep
repeats most of that work *across* points.  The L3-geometry sweep runs
the same kernel at five memory configurations: the rank layout, the
lowered loop IR, the pipeline timing rows and every torus phase are
identical at all five points — only the hierarchy analysis differs.
This module exploits that:

* sweep points are planned together: placements, node-card counter
  modes, communication phases and the comm-side counter accumulation
  are computed once per (kernel, layout) group and shared by every L3
  point of that kernel; pipeline-timing rows are deduped on
  ``(work, mode, residents)`` — independent of the memory
  configuration — and every surviving node-class representative is
  stacked into **one** :func:`repro.mem.hierarchy.analyze_nodes_batch`
  call and **one** ``compute_cycles_batch`` matrix across all points;
* counter delivery is algebraic: a clean run's per-counter delta is the
  modular sum of its pulses (see DESIGN.md for the exactness argument),
  so the engine accumulates named counts into per-node ``uint64`` rows
  and hands synthetic :class:`~repro.core.dump.NodeDump` records to the
  unchanged :class:`~repro.core.postprocess.Aggregation` — no UPC
  objects, no dump files, no re-simulated members;
* with ``--jobs N`` the per-point assembly stage fans out over the
  pool with the heavy NumPy payloads (comm matrices, class event
  vectors) placed in one :class:`repro.parallel.SharedArrayBlock` —
  workers attach the block once and each task ships only a point index.

The engine is wired in behind :func:`repro.parallel.set_batch_sweep`
(the ``--batch-sweep`` flag) as a :func:`repro.parallel.warm` batch
handler; the per-point path remains the identity oracle and
``tests/test_harness_batch.py`` pins byte-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import checkpoint as _checkpoint
from .. import faults as _faults
from .. import markers as _markers
from ..compiler.ir import Program
from ..core.dump import NodeDump, dump_file_size
from ..core.events import COUNTERS_PER_MODE, EVENTS_BY_NAME
from ..core.interface import NODES_PER_NODE_CARD, mode_for_node
from ..core.postprocess import Aggregation
from ..isa.latency import CORE_CLOCK_HZ
from ..mem import NodeMemoryConfig
from ..mem.hierarchy import analyze_nodes_batch
from ..net import (
    BarrierNetwork,
    CollectiveNetwork,
    EthernetIOModel,
    TorusNetwork,
    TorusTopology,
)
from ..node import ComputeNode, OperatingMode
from ..obs import metrics as _metrics
from ..obs import timeline as _timeline
from ..obs.tracer import span as _span
from ..parallel import (
    SharedArrayBlock,
    cache_context,
    get_batch_sweep,
    get_jobs,
    parallel_map,
    worker_shared,
)
from ..runtime import machine as _machine
from ..runtime.machine import JobResult, _program_to_work
from ..runtime.mpi import CommResult, SimMPI
from ..runtime.process import place_ranks

_U64 = (1 << 64) - 1

_BATCH_RUNS = _metrics.counter("batch.runs")
_BATCH_POINTS = _metrics.counter("batch.points")
_BATCH_CLASSES = _metrics.counter("batch.stacked_classes")
_BATCH_TIMING_ROWS = _metrics.counter("batch.timing_rows")
_BATCH_TIMING_SHARED = _metrics.counter("batch.timing_rows_shared")

# the per-point engine's counters, mirrored point by point so report.md
# reads identically whichever engine produced the sweep
_JOBS = _metrics.counter("runtime.jobs")
_BSP_PHASES = _metrics.counter("runtime.bsp_phases")
_NODE_CLASSES = _metrics.counter("runtime.node_classes")
_NODE_CLASS_HITS = _metrics.counter("runtime.node_class_hits")
_COMM_HITS = _metrics.counter("runtime.comm_cache_hits")
_COMM_MISSES = _metrics.counter("runtime.comm_cache_misses")
_CLASS_TIER_HITS = _metrics.counter("runtime.node_class_tier_hits")
_COMM_TIER_HITS = _metrics.counter("runtime.comm_tier_hits")
_NODE_RUNS = _metrics.counter("node.runs")


@dataclass(frozen=True)
class PointSpec:
    """One sweep point, fully specified for the batched engine."""

    program: Program
    mode: OperatingMode
    num_ranks: int
    num_nodes: int
    mem_config: NodeMemoryConfig
    counter_modes: Tuple[int, int] = (0, 2)

    @classmethod
    def for_vnm(cls, code: str, flags, l3_mb: int = 8,
                problem_class: str = "C",
                counter_modes: Tuple[int, int] = (0, 2)) -> "PointSpec":
        """The paper's VNM configuration (mirrors ``run_vnm``)."""
        from ..npb import paper_ranks
        from .sweep import MB, compiled_benchmark, vnm_nodes
        ranks = paper_ranks(code)
        return cls(
            program=compiled_benchmark(code, flags, problem_class),
            mode=OperatingMode.VNM, num_ranks=ranks,
            num_nodes=vnm_nodes(ranks),
            mem_config=NodeMemoryConfig().with_l3_size(l3_mb * MB),
            counter_modes=tuple(counter_modes))

    @classmethod
    def for_smp1(cls, code: str, flags, l3_mb: int = 2,
                 problem_class: str = "C") -> "PointSpec":
        """The paper's fair SMP/1 configuration (mirrors ``run_smp1``)."""
        from ..npb import paper_ranks
        from .sweep import MB, compiled_benchmark
        ranks = paper_ranks(code)
        return cls(
            program=compiled_benchmark(code, flags, problem_class),
            mode=OperatingMode.SMP1, num_ranks=ranks, num_nodes=ranks,
            mem_config=NodeMemoryConfig().with_l3_size(l3_mb * MB))

    @classmethod
    def for_scaled(cls, code: str, flags, num_ranks: int,
                   l3_mb: int = 8,
                   problem_class: str = "C") -> "PointSpec":
        """An arbitrary VNM scale (mirrors ``run_scaled_vnm``)."""
        from ..compiler import compile_program
        from ..npb import build_benchmark
        from .sweep import MB, vnm_nodes
        return cls(
            program=compile_program(
                build_benchmark(code, num_ranks=num_ranks,
                                problem_class=problem_class), flags),
            mode=OperatingMode.VNM, num_ranks=num_ranks,
            num_nodes=vnm_nodes(num_ranks),
            mem_config=NodeMemoryConfig().with_l3_size(l3_mb * MB))


def available() -> bool:
    """Whether the batched engine may replace the per-point path.

    The engine reproduces the *clean-run* semantics of ``Job.run``
    exactly; anything that perturbs or observes a run point-by-point —
    fault injection, timeline sampling, open marker regions — falls
    back to the per-point oracle.
    """
    if not get_batch_sweep():
        return False
    injector = _faults.get()
    if injector is not None and injector.config.any_enabled:
        return False
    if _timeline.resolve_config(None) is not None:
        return False
    if _markers.active():
        return False
    return True


# ---------------------------------------------------------------------------
# counter algebra: named event counts -> per-node uint64 rows
# ---------------------------------------------------------------------------
def _accumulate(acc: Dict[str, int], events: Dict[str, int]) -> None:
    for name, count in events.items():
        acc[name] = acc.get(name, 0) + count


def _counts_to_row(counts: Dict[str, int], counter_mode: int) -> np.ndarray:
    """One node's counter row: mode-gated, counter-indexed, masked.

    Mirrors ``UPCUnit.pulse_many`` delivery exactly: zero counts are
    skipped, negative counts raise, unknown names and events of another
    mode are ignored, and each counter holds its pulse sum mod 2**64
    (modular addition commutes, so summing before masking is identical
    to the per-pulse sequence).
    """
    acc: Dict[int, int] = {}
    for name, count in counts.items():
        if count < 0:
            raise ValueError(f"negative event count: {name}={count}")
        if count == 0:
            continue
        event = EVENTS_BY_NAME.get(name)
        if event is None or event.mode != counter_mode:
            continue
        acc[event.counter] = acc.get(event.counter, 0) + count
    row = np.zeros(COUNTERS_PER_MODE, dtype=np.uint64)
    for counter, total in acc.items():
        row[counter] = np.uint64(total & _U64)
    return row


# ---------------------------------------------------------------------------
# stage helpers
# ---------------------------------------------------------------------------
class _Layout:
    """Everything shared by points with one (ranks, mode, nodes) shape."""

    def __init__(self, num_ranks: int, mode: OperatingMode,
                 num_nodes: int):
        if num_ranks > num_nodes * mode.processes_per_node:
            raise ValueError(
                f"{num_ranks} ranks exceed the partition's "
                f"{num_nodes * mode.processes_per_node} slots "
                f"({num_nodes} nodes, {mode.value})")
        self.placement = _cached_placement(num_ranks, mode.name,
                                           num_nodes)
        self.used_nodes = sorted(self.placement.slots_by_node())
        self.card_size = min(NODES_PER_NODE_CARD,
                             max(1, len(self.used_nodes) // 2))
        self.residents = [len(self.placement.ranks_on_node(n))
                          for n in self.used_nodes]

    def counter_modes(self, primary: int, secondary: int) -> List[int]:
        return [mode_for_node(n, primary, secondary, self.card_size)
                for n in self.used_nodes]


def _resolve_comm_phases(point: PointSpec, layout: _Layout,
                         tier, tier_ctx) -> Tuple[List[CommResult], bool]:
    """Costed phases for one point, through the same caches as ``Job``.

    Returns ``(phases, was_cached)``; a computed result is seeded into
    the in-process comm cache and the shared tier exactly as the
    per-point engine would, so cache keys and contents are identical.
    """
    comm_ops = list(point.program.comms())
    comm_key = (tuple(comm_ops), point.num_ranks, point.mode.name,
                point.num_nodes)
    phases = _machine._COMM_CACHE.get(comm_key)
    if phases is not None:
        return phases, True
    if tier is not None:
        payload = tier.get("machine.comm_phase", (tier_ctx, comm_key))
        if payload is not None:
            phases = [CommResult.from_dict(d) for d in payload]
            _COMM_TIER_HITS.inc()
            while len(_machine._COMM_CACHE) >= _machine._COMM_CACHE_MAX:
                _machine._COMM_CACHE.pop(next(iter(_machine._COMM_CACHE)))
            _machine._COMM_CACHE[comm_key] = phases
            return phases, True
    # cost the phases on a throwaway network set: phase costs are pure
    # functions of (ops, placement, partition), so no Machine (and no
    # JTAG boot) is needed
    topology = TorusTopology.for_nodes(point.num_nodes)
    mpi = SimMPI(layout.placement, topology, TorusNetwork(topology),
                 CollectiveNetwork(point.num_nodes),
                 BarrierNetwork(point.num_nodes))
    phases = [mpi.run(op) for op in comm_ops]
    while len(_machine._COMM_CACHE) >= _machine._COMM_CACHE_MAX:
        _machine._COMM_CACHE.pop(next(iter(_machine._COMM_CACHE)))
    _machine._COMM_CACHE[comm_key] = phases
    if tier is not None:
        tier.put("machine.comm_phase", (tier_ctx, comm_key),
                 [phase.to_dict() for phase in phases])
    return phases, False


def _comm_side_counts(layout: _Layout, phases: Sequence[CommResult],
                      mode: OperatingMode) -> Tuple[List[Dict[str, int]],
                                                    float]:
    """Per-used-node comm-phase event counts and the comm wait cycles.

    Replays the per-point delivery order as one accumulation: per-phase
    torus events on the receiving used nodes, collective events on
    every used node, the total message-staging DDR lines split across
    the controllers, and the comm wait elapsing on every rank-hosting
    core.  The float phase costs are summed in op order — the same
    additions, in the same order, as the per-point loop.
    """
    index_of = {n: i for i, n in enumerate(layout.used_nodes)}
    counts: List[Dict[str, int]] = [{} for _ in layout.used_nodes]
    collective_total: Dict[str, int] = {}
    ddr_lines: Dict[int, int] = {}
    comm_cycles = 0.0
    for phase in phases:
        comm_cycles += phase.cycles_per_rank
        for node_id, events in phase.torus_events.items():
            i = index_of.get(node_id)
            if i is not None:
                _accumulate(counts[i], events)
        if phase.collective_events:
            _accumulate(collective_total, phase.collective_events)
        for node_id, lines in phase.ddr_lines_per_node.items():
            ddr_lines[node_id] = ddr_lines.get(node_id, 0) + lines
    assignment = mode.core_assignment()
    comm_int = int(round(comm_cycles))
    for i, node_id in enumerate(layout.used_nodes):
        if collective_total:
            _accumulate(counts[i], collective_total)
        lines = ddr_lines.get(node_id, 0)
        if lines:
            _accumulate(counts[i], {"BGP_DDR0_WRITE": lines // 2,
                                    "BGP_DDR1_READ": lines - lines // 2})
        if comm_int > 0:
            _accumulate(counts[i], {
                f"BGP_PU{core}_CYCLES": comm_int
                for slot in range(layout.residents[i])
                for core in assignment[slot]})
    return counts, comm_cycles


def _dump_io_cycles(num_nodes: int, used_nodes: Sequence[int]) -> float:
    """Cycles of the post-monitoring dump phase over the I/O path.

    Each used node ships one single-set dump whose size is a pure
    function of the format (:func:`repro.core.dump.dump_file_size`), so
    the Ethernet write phase is costed without materialising files.
    """
    dump_bytes = [0] * num_nodes
    size = dump_file_size(1)
    for node_id in used_nodes:
        dump_bytes[node_id] = size
    return EthernetIOModel().write_phase(dump_bytes).cycles


# ---------------------------------------------------------------------------
# point assembly (runs in the parent, or as a pool task per point)
# ---------------------------------------------------------------------------
@lru_cache(maxsize=64)
def _cached_placement(num_ranks: int, mode_name: str, num_nodes: int):
    """Block placement, shared across the points of one layout.

    Placement is deterministic, so every point of a layout group (and
    every ``JobResult`` of that group) can hold the same object; the
    worker-side cache likewise amortises it across a worker's tasks.
    """
    return place_ranks(num_ranks, OperatingMode[mode_name], num_nodes)


def _assemble_point(meta: Dict[str, Any],
                    array_of: Callable[[str], np.ndarray]) -> JobResult:
    """Build one point's ``JobResult`` from the planned tables.

    ``meta`` holds only small picklable values; the heavy arrays (the
    group's comm-side counter matrix and the class event vectors) come
    through ``array_of`` — a plain dict lookup in the serial path, a
    shared-memory attach under the pool.
    """
    mode = OperatingMode[meta["mode"]]
    placement = _cached_placement(meta["num_ranks"], meta["mode"],
                                  meta["num_nodes"])
    used_nodes = sorted(placement.slots_by_node())
    matrix = array_of(meta["comm_array"]).copy()
    for vec_name, indices in meta["adds"]:
        vec = array_of(vec_name)
        matrix[np.asarray(indices, dtype=np.intp)] += vec
    node_modes = meta["node_modes"]
    dumps = [NodeDump(node_id=node_id, mode=node_modes[i],
                      clock_hz=CORE_CLOCK_HZ, sets={0: matrix[i]})
             for i, node_id in enumerate(used_nodes)]
    aggregation = Aggregation(dumps, set_id=0)

    compute_cycles = [0.0] * meta["num_ranks"]
    cycles_by_residents = meta["cycles_by_residents"]
    for node_id in used_nodes:
        residents = placement.ranks_on_node(node_id)
        cycles = cycles_by_residents[len(residents)]
        for slot, rank in enumerate(residents):
            compute_cycles[rank] = cycles[slot]
    comm_cycles = meta["comm_cycles"]
    elapsed = max(c + comm_cycles for c in compute_cycles)
    return JobResult(
        program_name=meta["program_name"],
        flags_label=meta["flags_label"],
        mode=mode,
        placement=placement,
        elapsed_cycles=elapsed,
        compute_cycles_per_rank=compute_cycles,
        comm_cycles_per_rank=comm_cycles,
        aggregation=aggregation,
        dump_io_cycles=meta["dump_io"],
    )


#: Worker-side cache of the attached shared block (one per batch; the
#: mapping lives until the pool retires the worker).
_ATTACHED: Dict[str, SharedArrayBlock] = {}


def _assemble_point_task(index: int) -> JobResult:
    """Pool target: assemble one point from the shared batch tables."""
    payload = worker_shared()
    header = payload["header"]
    block = _ATTACHED.get(header["block"])
    if block is None:
        for stale in _ATTACHED.values():  # a previous batch's mapping
            stale.close()
        _ATTACHED.clear()
        block = SharedArrayBlock.attach(header)
        _ATTACHED[header["block"]] = block
    return _assemble_point(payload["metas"][index], block.array)


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------
def run_points(points: Sequence[PointSpec]) -> List[JobResult]:
    """Run every sweep point through the cross-point batched engine.

    Byte-identical to running each point through ``Job.run`` with the
    memoized engine — same results, same shared-tier records under the
    same keys, same runtime counters — but with the cross-point
    redundancy removed and each model stage advanced as one stacked
    pass over all surviving class representatives.
    """
    points = list(points)
    if not points:
        return []
    _BATCH_RUNS.inc()
    _BATCH_POINTS.inc(len(points))
    tier = _checkpoint.get_shared_tier()
    tier_ctx = cache_context() if tier is not None else None

    with _span("batch.sweep", points=len(points)) as sweep_span:
        # ---- stage 1: layouts + per-point class keys ------------------
        layouts: Dict[Tuple, _Layout] = {}
        point_classes: List[Dict[int, Tuple]] = []  # residents -> key
        class_specs: Dict[Tuple, PointSpec] = {}
        works: Dict[int, Any] = {}
        for point in points:
            lkey = (point.num_ranks, point.mode.name, point.num_nodes)
            layout = layouts.get(lkey)
            if layout is None:
                layout = layouts[lkey] = _Layout(
                    point.num_ranks, point.mode, point.num_nodes)
            if id(point.program) not in works:
                works[id(point.program)] = _program_to_work(point.program)
            job_key = (point.program.name, point.program.flags_label,
                       point.mode.name, point.mem_config)
            by_residents: Dict[int, Tuple] = {}
            for residents in layout.residents:
                if residents not in by_residents:
                    key = (residents,) + job_key
                    by_residents[residents] = key
                    class_specs.setdefault(key, point)
            point_classes.append(by_residents)

        # ---- stage 2: node-class results, one stacked pass ------------
        class_results: Dict[Tuple, Tuple[List[float], Dict[str, int]]] = {}
        class_from_tier: set = set()
        pending: List[Tuple] = []
        for key in class_specs:
            if tier is not None:
                payload = tier.get("machine.node_class", (tier_ctx, key))
                if payload is not None:
                    class_results[key] = (payload["cycles"],
                                          payload["events"])
                    class_from_tier.add(key)
                    continue
            pending.append(key)
        _BATCH_CLASSES.inc(len(pending))
        if pending:
            with _span("batch.classes", pending=len(pending)):
                _simulate_classes(pending, class_specs, works,
                                  class_results)
            if tier is not None:
                for key in pending:
                    cycles, events = class_results[key]
                    tier.put("machine.node_class", (tier_ctx, key),
                             {"cycles": list(cycles),
                              "events": dict(events)})

        # ---- stage 3: comm phases + per-group counter matrices --------
        # resolved lazily in point order so the hit/miss counters tick
        # exactly as a per-point sweep's would
        groups: Dict[Tuple, Dict[str, Any]] = {}
        class_owner: Dict[Tuple, int] = {}
        metas: List[Dict[str, Any]] = []
        arrays: Dict[str, np.ndarray] = {}
        vec_names: Dict[Tuple[Tuple, int], str] = {}
        for p_index, point in enumerate(points):
            lkey = (point.num_ranks, point.mode.name, point.num_nodes)
            layout = layouts[lkey]
            comm_ops = tuple(point.program.comms())
            gkey = (comm_ops, point.num_ranks, point.mode.name,
                    point.num_nodes, point.counter_modes)
            group = groups.get(gkey)
            if group is None:
                phases, cached = _resolve_comm_phases(point, layout,
                                                      tier, tier_ctx)
                (_COMM_HITS if cached else _COMM_MISSES).inc()
                counts, comm_cycles = _comm_side_counts(
                    layout, phases, point.mode)
                node_modes = layout.counter_modes(*point.counter_modes)
                comm_array = f"comm{len(groups)}"
                arrays[comm_array] = np.stack(
                    [_counts_to_row(counts[i], node_modes[i])
                     for i in range(len(layout.used_nodes))])
                # node indices that share one (residents, counter-mode)
                # row update, shared by every point of this group
                index_groups: Dict[Tuple[int, int], List[int]] = {}
                for i in range(len(layout.used_nodes)):
                    pair = (layout.residents[i], node_modes[i])
                    index_groups.setdefault(pair, []).append(i)
                group = groups[gkey] = {
                    "comm_array": comm_array,
                    "comm_cycles": comm_cycles,
                    "node_modes": node_modes,
                    "index_groups": index_groups,
                    "dump_io": _dump_io_cycles(point.num_nodes,
                                               layout.used_nodes),
                }
            else:
                _COMM_HITS.inc()
            # per-point engine-counter parity
            _JOBS.inc()
            _BSP_PHASES.inc(len(comm_ops))
            by_residents = point_classes[p_index]
            _NODE_CLASSES.inc(len(by_residents))
            _NODE_CLASS_HITS.inc(len(layout.used_nodes)
                                 - len(by_residents))
            if tier is not None:
                for key in by_residents.values():
                    if key in class_from_tier:
                        _CLASS_TIER_HITS.inc()
                    elif class_owner.setdefault(key, p_index) != p_index:
                        # a later point re-reading a class an earlier
                        # point just persisted is a tier hit per point
                        _CLASS_TIER_HITS.inc()

            adds: List[Tuple[str, List[int]]] = []
            for (residents, counter_mode), indices in (
                    group["index_groups"].items()):
                key = by_residents[residents]
                vec_name = vec_names.get((key, counter_mode))
                if vec_name is None:
                    vec_name = f"vec{len(vec_names)}"
                    vec_names[(key, counter_mode)] = vec_name
                    arrays[vec_name] = _counts_to_row(
                        class_results[key][1], counter_mode)
                adds.append((vec_name, indices))
            metas.append({
                "program_name": point.program.name,
                "flags_label": point.program.flags_label,
                "mode": point.mode.name,
                "num_ranks": point.num_ranks,
                "num_nodes": point.num_nodes,
                "comm_array": group["comm_array"],
                "comm_cycles": group["comm_cycles"],
                "node_modes": group["node_modes"],
                "dump_io": group["dump_io"],
                "adds": adds,
                "cycles_by_residents": {
                    residents: list(class_results[key][0])
                    for residents, key in by_residents.items()},
            })

        # ---- stage 4: assemble every point ----------------------------
        with _span("batch.assemble", points=len(points)):
            results = _assemble_all(metas, arrays)
        sweep_span.set("classes", len(class_specs))
        sweep_span.set("stacked", len(pending))
    return results


def _simulate_classes(pending: Sequence[Tuple],
                      class_specs: Dict[Tuple, PointSpec],
                      works: Dict[int, Any],
                      class_results: Dict[Tuple, Tuple]) -> None:
    """Simulate every pending node class in one stacked pass.

    One :func:`analyze_nodes_batch` call covers all classes' hierarchy
    analyses; the pipeline-timing rows are deduped on
    ``(work, mode, residents)`` — the memory configuration never enters
    the timing — and one ``compute_cycles_batch`` matrix covers the
    survivors (row results are independent of batch composition, so
    stacking across classes is exact).
    """
    nodes: List[ComputeNode] = []
    procs: List[List] = []
    class_works: List[Any] = []
    for key in pending:
        point = class_specs[key]
        work = works[id(point.program)]
        node = ComputeNode(node_id=0, mode=point.mode,
                           mem_config=point.mem_config)
        loops = work.memory_loops()
        nodes.append(node)
        procs.append([loops if loops else [((), 0)]] * key[0])
        class_works.append(work)
    mem_results = analyze_nodes_batch([n.mem_model for n in nodes], procs)

    plans: List[List[tuple]] = []
    timing_slices: Dict[Tuple, Tuple[int, int]] = {}
    rows: List[np.ndarray] = []
    serial_fractions: List[float] = []
    shared_rows = 0
    for i, key in enumerate(pending):
        point = class_specs[key]
        work = class_works[i]
        node_plans = nodes[i]._plan([work] * key[0], mem_results[i])
        plans.append(node_plans)
        tkey = (id(work), point.mode.name, key[0])
        if tkey not in timing_slices:
            timing_slices[tkey] = (len(rows), len(node_plans))
            rows.extend(plan[3].as_vector() for plan in node_plans)
            serial_fractions.extend(plan[4] for plan in node_plans)
        else:
            shared_rows += len(node_plans)
    _BATCH_TIMING_ROWS.inc(len(rows))
    _BATCH_TIMING_SHARED.inc(shared_rows)
    totals = (nodes[0].cores[0].pipeline.compute_cycles_batch(
        np.stack(rows), serial_fractions) if rows else np.zeros(0))

    for i, key in enumerate(pending):
        point = class_specs[key]
        work = class_works[i]
        tkey = (id(work), point.mode.name, key[0])
        start, count = timing_slices[tkey]
        compute = [float(t) for t in totals[start:start + count].tolist()]
        result = nodes[i]._assemble([work] * key[0], mem_results[i],
                                    plans[i], compute)
        class_results[key] = (result.process_cycles, result.events)
        _NODE_RUNS.inc()


def _assemble_all(metas: List[Dict[str, Any]],
                  arrays: Dict[str, np.ndarray]) -> List[JobResult]:
    """Assemble all points, fanning out over the pool when allowed.

    Under the pool the arrays move through one shared-memory block:
    the initializer payload carries the attach header plus the small
    metas, and each task pickles a bare index — no NumPy bytes cross
    the result pipe in either direction except the final statistics.
    """
    if get_jobs() > 1 and len(metas) > 1:
        block = SharedArrayBlock.create(
            [(name, arr.shape, arr.dtype) for name, arr in arrays.items()])
        try:
            for name, arr in arrays.items():
                block.array(name)[...] = arr
            return parallel_map(
                _assemble_point_task,
                [(index,) for index in range(len(metas))],
                label="batch_points",
                shared={"header": block.header(), "metas": metas})
        finally:
            block.unlink()
    return [_assemble_point(meta, arrays.__getitem__) for meta in metas]


# ---------------------------------------------------------------------------
# warm() batch handlers for the memoised sweep runners
# ---------------------------------------------------------------------------
def _points_from_vnm_keys(keys: Sequence[Tuple]) -> List[PointSpec]:
    return [PointSpec.for_vnm(*key) for key in keys]


def _points_from_smp1_keys(keys: Sequence[Tuple]) -> List[PointSpec]:
    return [PointSpec.for_smp1(*key) for key in keys]


def _points_from_scaled_keys(keys: Sequence[Tuple]) -> List[PointSpec]:
    return [PointSpec.for_scaled(*key) for key in keys]


def _handler(points_of: Callable) -> Callable:
    def handle(keys: Sequence[Tuple]) -> Optional[List[JobResult]]:
        if not available():
            return None
        return run_points(points_of(keys))
    return handle


vnm_batch = _handler(_points_from_vnm_keys)
smp1_batch = _handler(_points_from_smp1_keys)
scaled_vnm_batch = _handler(_points_from_scaled_keys)


# ---------------------------------------------------------------------------
# paper-figure working set: warm + pin policy
# ---------------------------------------------------------------------------
def figure_working_set() -> List[Tuple]:
    """The memo calls behind the paper figures (VNM L3 sweep + pairs)."""
    from ..compiler import O5
    from ..npb import BENCHMARK_ORDER
    from .sweep import PAPER_L3_SIZES_MB
    calls: List[Tuple] = []
    for code in BENCHMARK_ORDER:
        for l3_mb in PAPER_L3_SIZES_MB:
            calls.append(("run_vnm", (code, O5(), l3_mb)))
        calls.append(("run_smp1", (code, O5(), 2)))
    return calls


def pin_figure_working_set(tier) -> int:
    """Pin the paper-figure records so LRU eviction never drops them.

    The figure working set is the service's hottest — and most
    expensive — content; pinning keeps it resident under any
    ``max_records``/``max_bytes`` pressure.  Returns the number of
    records pinned (pins persist in the tier's pin index, so they also
    protect records written later under the same keys).
    """
    from .sweep import run_smp1, run_vnm
    runners = {"run_vnm": run_vnm, "run_smp1": run_smp1}
    records = []
    for name, args in figure_working_set():
        runner = runners[name]
        records.append((runner._category(),
                        runner._store_key(runner.key(*args))))
    return tier.pin_many(records)


def prefill_figure_working_set() -> int:
    """Compute-and-persist the figure working set through the runners.

    With the batched engine active the whole set is one stacked pass;
    otherwise each point runs through the per-point path.  Either way
    every record lands in the attached store/tier under its normal key.
    Returns the number of sweep points ensured resident.
    """
    from ..parallel import warm
    from .sweep import run_smp1, run_vnm
    calls = figure_working_set()
    vnm_calls = [args for name, args in calls if name == "run_vnm"]
    smp1_calls = [args for name, args in calls if name == "run_smp1"]
    warm(run_vnm, vnm_calls)
    warm(run_smp1, smp1_calls)
    for args in vnm_calls:
        run_vnm(*args)
    for args in smp1_calls:
        run_smp1(*args)
    return len(calls)
