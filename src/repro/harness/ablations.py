"""Ablations and the paper's future-work experiments.

The paper closes with the studies it plans next (Section IX): varying
the prefetch amount, evaluating the hybrid (OpenMP + MPI) node modes,
and using the interface for feedback-driven optimization.  This module
runs those, plus ablations of the simulator's own design choices so a
reader can see which modelling decision carries which figure:

* ``ablation_prefetch_depth`` — the future-work L2-prefetch sweep;
* ``ext_hybrid_modes`` — SMP/1 vs SMP/4 vs Dual vs VNM across codes;
* ``ablation_interference`` — kill the shared-L3 interference term and
  watch Figure 12's FT/IS outliers collapse to 4x;
* ``ablation_write_stall`` — treat stores like loads and watch the
  transpose-heavy codes slow down;
* ``ablation_capacity_sharing`` — greedy (LRU-realistic) vs naive
  proportional sharing and its effect on the Figure 11 staircase;
* ``ablation_balanced_alltoall`` — dimension-ordered hotspots vs
  spread traffic for FT's transpose.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from ..compiler import O5
from ..mem import NodeMemoryConfig
from ..net import Message, TorusNetwork, TorusTopology
from ..node import OperatingMode
from ..npb import build_benchmark, paper_ranks
from ..parallel import parallel_map
from ..runtime import Job, Machine
from .report import ExperimentResult
from .sweep import compiled_benchmark, vnm_nodes

MB = 1024 * 1024


def _run(code: str, mem_config: NodeMemoryConfig,
         mode: OperatingMode = OperatingMode.VNM,
         ranks: int | None = None):
    ranks = ranks or paper_ranks(code)
    nodes = (-(-ranks // mode.processes_per_node))
    machine = Machine(nodes, mode=mode, mem_config=mem_config)
    return Job(machine, compiled_benchmark(code, O5()), ranks).run()


def _run_sweep(points):
    """Run ``_run`` over (code, mem_config[, mode[, ranks]]) points.

    Independent sweep points fan out over the process pool when the
    ``--jobs`` worker count allows; results come back in point order.
    """
    return parallel_map(_run, points, label="ablation_points")


# ---------------------------------------------------------------------------
# future work: prefetch-depth sweep
# ---------------------------------------------------------------------------
def ablation_prefetch_depth(
        benchmarks: Sequence[str] = ("MG", "FT", "CG", "SP"),
        depths: Sequence[int] = (0, 1, 2, 4, 8)) -> ExperimentResult:
    """Vary the L2 stream-prefetch depth (paper Section IX).

    Expected: streaming stencil codes (MG, SP) lose badly with
    prefetching off and saturate quickly with depth; gather-dominated
    CG barely notices.
    """
    result = ExperimentResult(
        experiment_id="abl-prefetch",
        title="L2 prefetch depth sweep (time relative to depth=2)",
        headers=["benchmark"] + [f"depth={d}" for d in depths],
    )
    runs = _run_sweep([(code, NodeMemoryConfig().with_prefetch_depth(d))
                       for code in benchmarks for d in depths])
    for i, code in enumerate(benchmarks):
        times = [job.elapsed_cycles
                 for job in runs[i * len(depths):(i + 1) * len(depths)]]
        baseline = times[depths.index(2)]
        result.rows.append([code] + [t / baseline for t in times])
        result.summary[f"no_prefetch_penalty_{code}"] = (
            times[depths.index(0)] / baseline - 1.0)
    result.notes.append("depth=2 is the modelled BG/P default")
    return result


# ---------------------------------------------------------------------------
# future work: hybrid node modes
# ---------------------------------------------------------------------------
def _hybrid_point(code: str, mode: OperatingMode, ranks: int):
    """One (benchmark, node-mode) point of the hybrid-modes study."""
    from ..compiler import compile_program

    compiled = compile_program(build_benchmark(code, num_ranks=ranks),
                               O5())
    nodes = -(-ranks // mode.processes_per_node)
    machine = Machine(nodes, mode=mode)
    return Job(machine, compiled, ranks).run()


def ext_hybrid_modes(
        benchmarks: Sequence[str] = ("MG", "CG", "LU", "BT"),
        ranks: int = 16) -> ExperimentResult:
    """All four operating modes on the same work (paper Section IX:
    'the performance of using OpenMP with MPI on the multicore
    nodes')."""
    modes = (OperatingMode.SMP1, OperatingMode.SMP4,
             OperatingMode.DUAL, OperatingMode.VNM)
    result = ExperimentResult(
        experiment_id="ext-hybrid",
        title=f"MFLOPS per chip by node mode ({ranks} ranks)",
        headers=["benchmark"] + [m.value for m in modes],
    )
    runs = parallel_map(_hybrid_point,
                        [(code, mode, ranks) for code in benchmarks
                         for mode in modes],
                        label="hybrid_points")
    for i, code in enumerate(benchmarks):
        row = [code] + [job.mflops_per_node()
                        for job in runs[i * len(modes):(i + 1) * len(modes)]]
        result.rows.append(row)
        result.summary[f"vnm_over_smp1_{code}"] = row[4] / row[1]
    result.notes.append(
        "every multi-core mode beats SMP/1 per chip; the ranking of "
        "SMP/4 vs VNM depends on the code's sharing behaviour")
    return result


# ---------------------------------------------------------------------------
# ablation: shared-L3 interference
# ---------------------------------------------------------------------------
def ablation_interference() -> ExperimentResult:
    """Zero the interference gamma: Figure 12's outliers collapse.

    This isolates the mechanism behind the paper's 'cache
    interference' explanation for FT and IS exceeding 4x.
    """
    result = ExperimentResult(
        experiment_id="abl-interference",
        title="Figure 12 traffic ratio with and without L3 interference",
        headers=["benchmark", "with interference", "gamma = 0"],
    )
    codes = ("MG", "FT", "IS", "LU")
    cfg_off = NodeMemoryConfig()
    cfg_off = replace(cfg_off, l3=replace(cfg_off.l3,
                                          interference_gamma=0.0))
    points = []
    for code in codes:
        points.append((code, NodeMemoryConfig().with_l3_size(2 * MB),
                       OperatingMode.SMP1, paper_ranks(code)))
        points.append((code, NodeMemoryConfig()))
        points.append((code, cfg_off))
    runs = _run_sweep(points)
    for i, code in enumerate(codes):
        smp, vnm_on, vnm_off = runs[3 * i:3 * i + 3]
        denom = smp.ddr_traffic_lines_per_node()
        with_g = vnm_on.ddr_traffic_lines_per_node() / denom
        without = vnm_off.ddr_traffic_lines_per_node() / denom
        result.rows.append([code, with_g, without])
        result.summary[f"delta_{code}"] = with_g - without
    result.notes.append(
        "without interference no benchmark can exceed ~4x: the excess "
        "is exactly the co-runner conflict-miss term")
    return result


# ---------------------------------------------------------------------------
# ablation: store-buffer modelling
# ---------------------------------------------------------------------------
def ablation_write_stall(
        benchmarks: Sequence[str] = ("FT", "MG", "IS")) -> ExperimentResult:
    """Stores-stall-like-loads vs store-buffer draining."""
    result = ExperimentResult(
        experiment_id="abl-write-stall",
        title="Execution time: store-buffer model vs stores-stall-fully",
        headers=["benchmark", "store buffers (default)",
                 "stores stall fully", "slowdown"],
    )
    runs = _run_sweep(
        [(code, cfg) for code in benchmarks
         for cfg in (NodeMemoryConfig(),
                     replace(NodeMemoryConfig(), write_stall_factor=1.0))])
    for i, code in enumerate(benchmarks):
        default, naive = runs[2 * i:2 * i + 2]
        ratio = naive.elapsed_cycles / default.elapsed_cycles
        result.rows.append([code, default.elapsed_cycles,
                            naive.elapsed_cycles, ratio])
        result.summary[f"slowdown_{code}"] = ratio
    result.notes.append(
        "write-heavy transposes (FT) are the most sensitive: without "
        "store buffers their pack phases serialise on DDR latency")
    return result


# ---------------------------------------------------------------------------
# ablation: capacity-sharing policy
# ---------------------------------------------------------------------------
def ablation_capacity_sharing() -> ExperimentResult:
    """Greedy (LRU-realistic) vs proportional capacity sharing.

    Proportional sharing lets a streaming array steal capacity from
    hot small arrays, flattening the Figure 11 staircase.
    """
    result = ExperimentResult(
        experiment_id="abl-sharing",
        title="Figure 11 (MG) under the two capacity-sharing policies",
        headers=["policy", "0MB", "2MB", "4MB", "6MB", "8MB"],
    )
    policies = ("greedy", "proportional")
    sizes = (0, 2, 4, 6, 8)
    runs = _run_sweep(
        [("MG", replace(NodeMemoryConfig().with_l3_size(size_mb * MB),
                        capacity_sharing=policy))
         for policy in policies for size_mb in sizes])
    for i, policy in enumerate(policies):
        traffic = [job.ddr_traffic_lines_per_node()
                   for job in runs[i * len(sizes):(i + 1) * len(sizes)]]
        normalized = [t / traffic[0] for t in traffic]
        result.rows.append([policy] + normalized)
        result.summary[f"at2mb_{policy}"] = normalized[1]
    result.notes.append(
        "the first step of the staircase (2MB) needs the greedy model: "
        "under proportional sharing the hot coarse-grid arrays never "
        "get enough contiguous share to fit")
    return result


# ---------------------------------------------------------------------------
# ablation: alltoall routing
# ---------------------------------------------------------------------------
def ablation_balanced_alltoall(num_nodes: int = 32,
                               bytes_per_rank: int = 665_600
                               ) -> ExperimentResult:
    """FT's transpose phase: dimension-ordered hotspots vs balanced.

    Runs the same node-level all-to-all message set through the torus
    twice; the balanced (optimised-collective) mode is what the main
    experiments use for ALLTOALL.
    """
    topo = TorusTopology.for_nodes(num_nodes)
    net = TorusNetwork(topo)
    slice_bytes = max(1, bytes_per_rank // (num_nodes - 1))
    messages = [Message(a, b, slice_bytes)
                for a in range(num_nodes) for b in range(num_nodes)
                if a != b]
    ordered = net.run_phase(messages, balanced=False)
    balanced = net.run_phase(messages, balanced=True)
    result = ExperimentResult(
        experiment_id="abl-alltoall",
        title=f"All-to-all on a {num_nodes}-node torus: routing models",
        headers=["routing", "phase cycles", "max link bytes"],
        rows=[
            ["dimension-ordered", ordered.cycles, ordered.max_link_bytes],
            ["balanced (optimised)", balanced.cycles,
             balanced.max_link_bytes],
        ],
        summary={"speedup": ordered.cycles / balanced.cycles},
    )
    result.notes.append(
        "BG/P's optimised MPI_Alltoall approaches aggregate link "
        "bandwidth; deterministic routing leaves hotspot links "
        "saturated while others idle")
    return result


# ---------------------------------------------------------------------------
# ablation: multiplexing vs the node-card split
# ---------------------------------------------------------------------------
def ablation_multiplexing(slice_cycles: int = 300_000
                          ) -> ExperimentResult:
    """Time-division multiplexing vs the paper's space-division split.

    Drives the same phase-structured workload (an FPU-heavy phase
    followed by a memory-heavy phase — the shape of every real solver
    iteration) through both collection strategies and compares their
    whole-run event estimates against ground truth.  The node-card
    split is exact by construction; multiplexing is biased whenever a
    phase correlates with the rotation — the paper's argument for
    burning silicon on 256 real counters.
    """
    from ..core import MultiplexedSession, UPCUnit
    from ..core.interface import BGPCounterInterface

    # the phased workload: (cycles, fma pulses, l3-miss pulses).
    # phase length matches the rotation slice — the resonance every
    # iterative solver produces when its time step and the tool's
    # rotation period are of the same order
    phases = [
        (300_000, 3_000, 30),      # compute phase
        (300_000, 300, 3_000),     # memory phase
    ]
    chunks = 8
    truth = {
        "BGP_PU0_FPU_FMA": sum((p[1] // chunks) * chunks
                               for p in phases),
        "BGP_L3_MISS": sum((p[2] // chunks) * chunks for p in phases),
    }

    def drive(pulse, advance):
        for cycles, fma, miss in phases:
            for _ in range(chunks):
                pulse("BGP_PU0_FPU_FMA", fma // chunks)
                pulse("BGP_L3_MISS", miss // chunks)
                advance(cycles // chunks)

    # strategy 1: time-division multiplexing on one node
    upc_mux = UPCUnit(node_id=0)
    mux = MultiplexedSession(upc_mux, modes=(0, 2),
                             slice_cycles=slice_cycles)
    drive(upc_mux.pulse, mux.advance)
    mux.finish()
    mux_est = mux.estimates()

    # strategy 2: the paper's split — two nodes, one per event set,
    # both seeing the whole run
    upc_a = UPCUnit(node_id=0)
    upc_b = UPCUnit(node_id=1)
    iface_a = BGPCounterInterface(upc_a, node_id=0)
    iface_b = BGPCounterInterface(upc_b, node_id=1)
    iface_a.initialize(mode=0)
    iface_b.initialize(mode=2)
    iface_a.start(0)
    iface_b.start(0)

    def pulse_both(name, count):
        upc_a.pulse(name, count)
        upc_b.pulse(name, count)

    drive(pulse_both, lambda cycles: None)
    iface_a.stop(0)
    iface_b.stop(0)
    split_est = iface_a.named_deltas(0)
    split_est.update(iface_b.named_deltas(0))

    result = ExperimentResult(
        experiment_id="abl-multiplex",
        title="Event-count error: multiplexing vs node-card split",
        headers=["event", "truth", "node-card split", "multiplexed",
                 "mux error %"],
    )
    for name, true_value in truth.items():
        split_value = split_est.get(name, 0)
        mux_value = mux_est.get(name, 0.0)
        err = abs(mux_value - true_value) / true_value * 100.0
        result.rows.append([name, true_value, split_value, mux_value,
                            err])
        result.summary[f"mux_error_{name.split('_')[-1]}"] = err / 100.0
    result.summary["split_exact"] = float(all(
        split_est.get(n, 0) == v for n, v in truth.items()))
    result.notes.append(
        "the split is exact by construction; multiplexing mis-estimates "
        "phase-correlated events (May'01-style time division, the "
        "paper's related work [16])")
    return result


ABLATION_EXPERIMENTS = {
    "abl-multiplex": ablation_multiplexing,
    "abl-prefetch": ablation_prefetch_depth,
    "ext-hybrid": ext_hybrid_modes,
    "abl-interference": ablation_interference,
    "abl-write-stall": ablation_write_stall,
    "abl-sharing": ablation_capacity_sharing,
    "abl-alltoall": ablation_balanced_alltoall,
}
