"""Parameter-sweep scaffolding shared by the experiment runners."""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

from ..compiler import FlagSet, Program, compile_program
from ..mem import NodeMemoryConfig
from ..node import OperatingMode
from ..npb import build_benchmark, paper_ranks
from ..runtime import Job, JobResult, Machine

MB = 1024 * 1024

#: The paper's standard partition: 128 processes on 32 nodes in Virtual
#: Node Mode (121 processes for SP/BT; 31 nodes hold them).
PAPER_L3_SIZES_MB = (0, 2, 4, 6, 8)


def vnm_nodes(num_ranks: int) -> int:
    """Nodes needed to hold ``num_ranks`` ranks in VNM."""
    return -(-num_ranks // 4)


@lru_cache(maxsize=256)
def compiled_benchmark(code: str, flags: FlagSet,
                       problem_class: str = "C") -> Program:
    """Build + compile one benchmark (memoised across experiments)."""
    return compile_program(build_benchmark(code,
                                           problem_class=problem_class),
                           flags)


@lru_cache(maxsize=256)
def run_vnm(code: str, flags: FlagSet, l3_mb: int = 8,
            problem_class: str = "C",
            counter_modes: Tuple[int, int] = (0, 2)) -> JobResult:
    """Run a benchmark in the paper's VNM configuration (memoised).

    ``counter_modes`` picks the two 256-event sets split across the
    node cards; the default covers FPU/pipe/L1 + L3/DDR.  A second run
    with ``(1, 3)`` collects the L2/snoop + network events — exactly
    the multi-run campaign a real 1024-event study needs.
    """
    program = compiled_benchmark(code, flags, problem_class)
    ranks = paper_ranks(code)
    machine = Machine(vnm_nodes(ranks), mode=OperatingMode.VNM,
                      mem_config=NodeMemoryConfig().with_l3_size(
                          l3_mb * MB))
    return Job(machine, program, ranks).run(counter_modes=counter_modes)


@lru_cache(maxsize=256)
def run_smp1(code: str, flags: FlagSet, l3_mb: int = 2,
             problem_class: str = "C") -> JobResult:
    """Run a benchmark in the paper's fair SMP/1 configuration.

    One rank per node, with the L3 shrunk to 2 MB "to perform a fair
    comparison" (paper, Section VIII).
    """
    program = compiled_benchmark(code, flags, problem_class)
    ranks = paper_ranks(code)
    machine = Machine(ranks, mode=OperatingMode.SMP1,
                      mem_config=NodeMemoryConfig().with_l3_size(
                          l3_mb * MB))
    return Job(machine, program, ranks).run()


def vnm_smp_pair(code: str, flags: FlagSet,
                 problem_class: str = "C") -> Tuple[JobResult, JobResult]:
    """The Figure 12/13/14 comparison pair for one benchmark."""
    return (run_vnm(code, flags, problem_class=problem_class),
            run_smp1(code, flags, problem_class=problem_class))


def clear_caches() -> None:
    """Drop all memoised runs (tests use this for isolation)."""
    compiled_benchmark.cache_clear()
    run_vnm.cache_clear()
    run_smp1.cache_clear()
