"""Parameter-sweep scaffolding shared by the experiment runners.

The run helpers here are memoized through
:class:`repro.parallel.MemoizedFunction`, so a figure runner that needs
the same (benchmark, flags, L3) point as an earlier figure gets it for
free — and, when the process-wide worker count is above 1 (the
``--jobs N`` CLI flag), the :func:`warm_runs` / :func:`warm_pairs`
helpers pre-fill those caches by fanning the missing sweep points out
over a process pool.  With one worker nothing is pre-computed and every
consumer takes the exact serial code path, keeping results
byte-identical to a pre-pool run.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Optional, Sequence, Tuple

from ..checkpoint import CheckpointStore
from ..compiler import FlagSet, Program, compile_program
from ..mem import NodeMemoryConfig
from ..node import OperatingMode
from ..npb import build_benchmark, paper_ranks
from ..parallel import memoized, warm
from ..runtime import Job, JobResult, Machine
from ..runtime.machine import clear_comm_cache

MB = 1024 * 1024

#: The paper's standard partition: 128 processes on 32 nodes in Virtual
#: Node Mode (121 processes for SP/BT; 31 nodes hold them).
PAPER_L3_SIZES_MB = (0, 2, 4, 6, 8)


def vnm_nodes(num_ranks: int) -> int:
    """Nodes needed to hold ``num_ranks`` ranks in VNM."""
    return -(-num_ranks // 4)


@lru_cache(maxsize=256)
def compiled_benchmark(code: str, flags: FlagSet,
                       problem_class: str = "C") -> Program:
    """Build + compile one benchmark (memoised across experiments)."""
    return compile_program(build_benchmark(code,
                                           problem_class=problem_class),
                           flags)


@memoized
def run_vnm(code: str, flags: FlagSet, l3_mb: int = 8,
            problem_class: str = "C",
            counter_modes: Tuple[int, int] = (0, 2)) -> JobResult:
    """Run a benchmark in the paper's VNM configuration (memoised).

    ``counter_modes`` picks the two 256-event sets split across the
    node cards; the default covers FPU/pipe/L1 + L3/DDR.  A second run
    with ``(1, 3)`` collects the L2/snoop + network events — exactly
    the multi-run campaign a real 1024-event study needs.
    """
    program = compiled_benchmark(code, flags, problem_class)
    ranks = paper_ranks(code)
    machine = Machine(vnm_nodes(ranks), mode=OperatingMode.VNM,
                      mem_config=NodeMemoryConfig().with_l3_size(
                          l3_mb * MB))
    return Job(machine, program, ranks).run(counter_modes=counter_modes)


@memoized
def run_smp1(code: str, flags: FlagSet, l3_mb: int = 2,
             problem_class: str = "C") -> JobResult:
    """Run a benchmark in the paper's fair SMP/1 configuration.

    One rank per node, with the L3 shrunk to 2 MB "to perform a fair
    comparison" (paper, Section VIII).
    """
    program = compiled_benchmark(code, flags, problem_class)
    ranks = paper_ranks(code)
    machine = Machine(ranks, mode=OperatingMode.SMP1,
                      mem_config=NodeMemoryConfig().with_l3_size(
                          l3_mb * MB))
    return Job(machine, program, ranks).run()


@memoized
def run_scaled_vnm(code: str, flags: FlagSet, num_ranks: int,
                   l3_mb: int = 8,
                   problem_class: str = "C") -> JobResult:
    """Run a benchmark at an arbitrary VNM scale (memoised).

    The figure runners use the paper's fixed partition; scaling studies
    and the parallel-speedup benchmark sweep this one across rank
    counts and L3 sizes instead.
    """
    program = compile_program(
        build_benchmark(code, num_ranks=num_ranks,
                        problem_class=problem_class), flags)
    machine = Machine(vnm_nodes(num_ranks), mode=OperatingMode.VNM,
                      mem_config=NodeMemoryConfig().with_l3_size(
                          l3_mb * MB))
    return Job(machine, program, num_ranks).run()


def run_small_vnm(code: str, flags: FlagSet, num_ranks: int = 16,
                  problem_class: str = "A",
                  sample_every: int = None) -> JobResult:
    """A small class-A VNM run, deliberately **not** memoised.

    The telemetry smoke experiment (and CI's instrumented smoke step)
    runs this with sampling enabled; a memo cache would hand back a
    stale ``JobResult`` whose timeline reflects the *first* call's
    sampling configuration, so every call simulates fresh.
    """
    program = compile_program(
        build_benchmark(code, num_ranks=num_ranks,
                        problem_class=problem_class), flags)
    machine = Machine(vnm_nodes(num_ranks), mode=OperatingMode.VNM)
    return Job(machine, program, num_ranks,
               sample_every=sample_every).run()


def vnm_smp_pair(code: str, flags: FlagSet,
                 problem_class: str = "C") -> Tuple[JobResult, JobResult]:
    """The Figure 12/13/14 comparison pair for one benchmark."""
    return (run_vnm(code, flags, problem_class=problem_class),
            run_smp1(code, flags, problem_class=problem_class))


def warm_runs(calls: Iterable[Tuple]) -> int:
    """Pre-fill ``run_vnm``'s cache with the given argument tuples."""
    return warm(run_vnm, calls)


def warm_pairs(codes: Sequence[str], flags: FlagSet,
               problem_class: str = "C") -> int:
    """Pre-fill both sides of the Figure 12/13/14 comparison pairs."""
    warmed = warm(run_vnm, [(code, flags, 8, problem_class)
                            for code in codes])
    warmed += warm(run_smp1, [(code, flags, 2, problem_class)
                              for code in codes])
    return warmed


def clear_caches() -> None:
    """Drop all memoised runs (tests use this for isolation)."""
    compiled_benchmark.cache_clear()
    run_vnm.cache_clear()
    run_smp1.cache_clear()
    run_scaled_vnm.cache_clear()
    clear_comm_cache()


# ---------------------------------------------------------------------------
# checkpoint/resume (the --resume DIR layer)
# ---------------------------------------------------------------------------
#: Every memoised sweep-point runner, i.e. everything worth persisting.
_RESUMABLE = (run_vnm, run_smp1, run_scaled_vnm)


def attach_runner_store(store) -> None:
    """Back every memoised sweep runner with ``store``.

    ``store`` is any :class:`~repro.checkpoint.CheckpointStore`
    (including the service's LRU-bounded
    :class:`~repro.checkpoint.SharedCacheTier`).  Persisted keys are
    context-qualified by the memo layer — active performance group,
    ``set_vectorize`` state, cache schema version — so one directory
    can safely serve many processes and configurations at once.
    """
    for runner in _RESUMABLE:
        runner.attach_store(store, encode=lambda r: r.to_dict(),
                            decode=JobResult.from_dict)


def attach_resume(directory) -> CheckpointStore:
    """Back every memoised sweep runner with an on-disk store.

    From here on, each completed sweep point is persisted atomically as
    it finishes, and cache misses consult the store before simulating —
    so a run interrupted by SIGINT or a dead worker picks up where it
    left off when restarted with the same directory.  Returns the store
    (the CLI also checkpoints whole experiment results into it).
    """
    store = CheckpointStore(directory)
    attach_runner_store(store)
    return store


def detach_resume() -> None:
    """Disconnect the sweep runners from any attached store."""
    for runner in _RESUMABLE:
        runner.detach_store()


# ---------------------------------------------------------------------------
# cross-point batched engine (the --batch-sweep layer)
# ---------------------------------------------------------------------------
# each runner's warm() fan-out can be replaced by one stacked pass over
# all missing points; the handlers decline (and warm falls back to the
# per-point path) whenever fault injection, sampling or marker regions
# make the batched clean-run semantics inapplicable
from . import batch as _batch  # noqa: E402  (import cycle: batch uses us lazily)

run_vnm.attach_batch(_batch.vnm_batch)
run_smp1.attach_batch(_batch.smp1_batch)
run_scaled_vnm.attach_batch(_batch.scaled_vnm_batch)
