"""NAS Parallel Benchmark workload models + functional mini-kernels."""

from .base import (
    BenchmarkInfo,
    DEFAULT_RANKS,
    NPBBuilder,
    PROBLEM_CLASSES,
    SQUARE_RANKS,
)
from .functional import FUNCTIONAL_KERNELS, KernelResult
from .suite import (
    BENCHMARK_ORDER,
    all_benchmarks,
    build_benchmark,
    builder,
    paper_ranks,
)

__all__ = [
    "BENCHMARK_ORDER",
    "build_benchmark",
    "builder",
    "paper_ranks",
    "all_benchmarks",
    "NPBBuilder",
    "BenchmarkInfo",
    "PROBLEM_CLASSES",
    "DEFAULT_RANKS",
    "SQUARE_RANKS",
    "FUNCTIONAL_KERNELS",
    "KernelResult",
]
