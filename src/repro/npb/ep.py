"""EP — Embarrassingly Parallel: Gaussian deviates by Marsaglia polar.

Workload character (NAS EP, class C: 2^32 pairs):

* **compute** — a tight rejection loop: linear-congruential uniforms
  (integer multiply-heavy), squares and sums (FMA), a divide and a
  sqrt/log pair per accepted deviate.  Almost no memory traffic — the
  ring-count table is a few KB.  Figure 6 shows EP dominated by
  *single* FMA; its big compiler win (Figure 9, with FT: "up to 60%")
  comes from the vectorizable uniform-generation half
  (``data_parallel_fraction = 0.35``) plus heavy scalar cleanup of the
  rejection-loop bookkeeping (``overhead_fraction = 0.45``).
* **communication** — nothing until the final 10-element ring-count
  reduction; EP is the suite's communication floor.
"""

from __future__ import annotations

from ..compiler.ir import CommKind, CommOp, Loop, Phase, Program
from ..mem import AccessKind, StreamAccess
from .base import BenchmarkInfo, NPBBuilder, mix


class EPBuilder(NPBBuilder):
    """Program builder for EP."""

    info = BenchmarkInfo(
        code="EP",
        full_name="Embarrassingly Parallel",
        description="Gaussian random deviates, no communication",
    )

    #: pairs per rank at class C on the default 128 ranks (model scale)
    PAIRS_C = 6_000_000

    def build(self, num_ranks: int, problem_class: str = "C") -> Program:
        self.validate_ranks(num_ranks)
        scale = (self.class_scale(problem_class)
                 * self.info.default_ranks() / num_ranks)
        pairs = max(1, int(self.PAIRS_C * scale))
        tables = self.footprint(96 * 1024, minimum=4096)

        batches = 50  # the ring-count tables are re-swept per batch
        generate = Loop(
            name="ep.pairs",
            # per candidate pair: LCG uniforms, t = x^2+y^2, the
            # accept branch, then sqrt(-2 ln t / t) on acceptance —
            # the polynomial sqrt/log kernels are FMA-dominated
            body=mix(FP_FMA=6, FP_MUL=2, FP_ADDSUB=2.5, FP_DIV=0.6,
                     INT_MUL=2, INT_ALU=6, LOAD=1.5, STORE=0.5,
                     BRANCH=1.5, OTHER=2.0),
            trip_count=max(1, pairs // batches),
            executions=batches,
            streams=(
                StreamAccess("ep.tables", footprint_bytes=tables,
                             kind=AccessKind.READWRITE),
            ),
            data_parallel_fraction=0.28,
            serial_fraction=0.45,
            serial_floor=0.10,
            overhead_fraction=0.45,
            hoistable_fraction=0.08,
        )
        reduce_counts = CommOp(CommKind.ALLREDUCE, bytes_per_rank=80,
                               repeats=1)
        return Program(name="EP", phases=[
            Phase(loops=(generate,), comm=reduce_counts,
                  name="generate + final reduction"),
        ])


def build(num_ranks: int, problem_class: str = "C") -> Program:
    """Build EP's per-rank Program."""
    return EPBuilder().build(num_ranks, problem_class)
