"""FT — 3D FFT PDE: spectral solver with all-to-all transposes.

Workload character (NAS FT, class C: 512^3 complex grid, 20 steps):

* **compute** — radix FFT butterflies (balanced add/sub + multiply +
  FMA on complex pairs) and a point-wise spectral-evolution pass.
  Butterflies over independent lines are prime SIMD material
  (Figure 6 shows FT heavy in SIMD add-sub/FMA; Figure 7 shows the
  SIMD count jumping once ``-qarch=440d`` is on):
  ``data_parallel_fraction = 0.75``.
* **memory** — the local slab is re-traversed every FFT pass; one pass
  works at a large stride (the cross-line dimension), which defeats
  the L2 prefetcher, and the transpose staging buffer streams.
  The hot slab is sized *above* a 2 MB-node share, which is why FT's
  co-runners interfere in VNM (Figure 12's > 4x point).
* **communication** — the distributed transpose: a personalised
  all-to-all of the whole local slab, every time step.  This is the
  dominant comm load of the suite and is inter-node even in VNM.
"""

from __future__ import annotations

from ..compiler.ir import CommKind, CommOp, Loop, Phase, Program
from ..mem import AccessKind, AccessPattern, StreamAccess
from .base import BenchmarkInfo, NPBBuilder, mix

MB = 1024 * 1024


class FTBuilder(NPBBuilder):
    """Program builder for FT."""

    info = BenchmarkInfo(
        code="FT",
        full_name="3-D FFT PDE",
        description="spectral PDE solver: 3D FFTs + all-to-all transpose",
    )

    STEPS = 20

    def build(self, num_ranks: int, problem_class: str = "C") -> Program:
        self.validate_ranks(num_ranks)
        scale = (self.class_scale(problem_class)
                 * self.info.default_ranks() / num_ranks)
        slab = self.footprint(0.65 * MB * scale)       # complex local slab
        twiddle = self.footprint(0.20 * MB * scale)    # roots of unity
        stage = self.footprint(2.40 * MB * scale)      # transpose buffer
        points = max(1, slab // 16)                    # complex elements

        fft_local = Loop(
            name="ft.fft_local",
            # cache-blocked FFT: several butterfly stages execute per
            # memory pass, so each point carries multiple butterflies
            body=mix(FP_ADDSUB=16, FP_MUL=8, FP_FMA=10,
                     LOAD=9, STORE=4, INT_ALU=5, BRANCH=0.4, OTHER=0.3),
            trip_count=points,
            executions=self.STEPS * 2,  # two local dimensions per step
            streams=(
                StreamAccess("ft.slab", footprint_bytes=slab,
                             kind=AccessKind.READWRITE,
                             element_bytes=16, stride_bytes=16),
                StreamAccess("ft.twiddle", footprint_bytes=twiddle),
            ),
            data_parallel_fraction=0.75,
            serial_fraction=0.25,
            serial_floor=0.05,
            overhead_fraction=0.35,
            hoistable_fraction=0.10,
        )
        fft_strided = Loop(
            name="ft.fft_cross",
            # the cross-line dimension: same flops, stride-defeated L2
            body=mix(FP_ADDSUB=16, FP_MUL=8, FP_FMA=10,
                     LOAD=9, STORE=4, INT_ALU=5, BRANCH=0.4, OTHER=0.3),
            trip_count=points,
            executions=self.STEPS,
            streams=(
                StreamAccess("ft.slab", footprint_bytes=slab,
                             kind=AccessKind.READWRITE,
                             element_bytes=16, stride_bytes=2048,
                             accesses=points,
                             pattern=AccessPattern.STRIDED),
                # transpose staging, cache-blocked: the pack writes land
                # column-major (reuse distance ~ the whole buffer, i.e.
                # RANDOM-equivalent at 32B-block granularity)...
                StreamAccess("ft.stage_pack", footprint_bytes=stage,
                             kind=AccessKind.WRITE, element_bytes=16,
                             accesses=max(1, stage // 32),
                             pattern=AccessPattern.RANDOM),
                # ...and the unpack reads stream back sequentially
                StreamAccess("ft.stage_unpack", footprint_bytes=stage,
                             element_bytes=16, stride_bytes=16),
            ),
            data_parallel_fraction=0.75,
            serial_fraction=0.25,
            serial_floor=0.05,
            overhead_fraction=0.35,
            hoistable_fraction=0.10,
        )
        evolve = Loop(
            name="ft.evolve",
            # point-wise multiply by the spectral evolution factors
            body=mix(FP_MUL=4, FP_FMA=2, FP_ADDSUB=1,
                     LOAD=5, STORE=2, INT_ALU=2, BRANCH=0.2, OTHER=0.2),
            trip_count=points,
            executions=self.STEPS,
            streams=(
                StreamAccess("ft.slab", footprint_bytes=slab,
                             kind=AccessKind.READWRITE, element_bytes=16,
                             stride_bytes=16),
            ),
            data_parallel_fraction=0.80,
            serial_fraction=0.15,
            serial_floor=0.03,
            overhead_fraction=0.30,
            hoistable_fraction=0.12,
        )
        transpose = CommOp(CommKind.ALLTOALL,
                           bytes_per_rank=slab,  # the slab changes hands
                           repeats=self.STEPS)
        checksum = CommOp(CommKind.ALLREDUCE, bytes_per_rank=16,
                          repeats=self.STEPS)
        return Program(name="FT", phases=[
            Phase(loops=(fft_local,), comm=transpose,
                  name="local FFTs + transpose"),
            Phase(loops=(fft_strided, evolve), comm=checksum,
                  name="cross FFT + evolve + checksum"),
        ])


def build(num_ranks: int, problem_class: str = "C") -> Program:
    """Build FT's per-rank Program."""
    return FTBuilder().build(num_ranks, problem_class)
