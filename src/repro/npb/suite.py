"""The NAS Parallel Benchmark suite registry.

One place to enumerate the eight benchmarks, their builders, and the
rank counts the paper runs them with (128 everywhere, 121 for the
square-grid SP and BT — Section V).
"""

from __future__ import annotations

from typing import Dict, List

from ..compiler.ir import Program
from .base import NPBBuilder
from .bt import BTBuilder
from .cg import CGBuilder
from .ep import EPBuilder
from .ft import FTBuilder
from .is_ import ISBuilder
from .lu import LUBuilder
from .mg import MGBuilder
from .sp import SPBuilder

#: Paper presentation order (Section V / Figure 6).
BENCHMARK_ORDER: List[str] = ["MG", "FT", "EP", "CG", "IS", "LU", "SP",
                              "BT"]

_BUILDERS: Dict[str, NPBBuilder] = {
    "MG": MGBuilder(),
    "FT": FTBuilder(),
    "EP": EPBuilder(),
    "CG": CGBuilder(),
    "IS": ISBuilder(),
    "LU": LUBuilder(),
    "SP": SPBuilder(),
    "BT": BTBuilder(),
}


def builder(code: str) -> NPBBuilder:
    """The builder for one benchmark code (case-insensitive)."""
    try:
        return _BUILDERS[code.upper()]
    except KeyError:
        raise ValueError(
            f"unknown NAS benchmark {code!r}; "
            f"choose from {BENCHMARK_ORDER}") from None


def build_benchmark(code: str, num_ranks: int | None = None,
                    problem_class: str = "C") -> Program:
    """Build one benchmark's per-rank Program.

    ``num_ranks`` defaults to the paper's count (128, or 121 for the
    square-grid SP/BT).
    """
    b = builder(code)
    if num_ranks is None:
        num_ranks = b.info.default_ranks()
    return b.build(num_ranks, problem_class)


def paper_ranks(code: str) -> int:
    """The rank count the paper uses for this benchmark."""
    return builder(code).info.default_ranks()


def all_benchmarks(problem_class: str = "C") -> Dict[str, Program]:
    """All eight Programs at their paper rank counts."""
    return {code: build_benchmark(code, problem_class=problem_class)
            for code in BENCHMARK_ORDER}
