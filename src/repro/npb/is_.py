"""IS — Integer Sort: bucketed key ranking.

Workload character (NAS IS, class C: 2^27 keys, 10 repetitions):

* **compute** — integer work: key generation, histogramming, prefix
  sums.  The tiny FP content (the verification/timing arithmetic)
  shows up as single FMA in Figure 6; there is nothing for the
  SIMDizer, so IS sits at the bottom of Figures 9/10's gains.
* **memory** — the key array streams; the bucket/histogram array is
  hammered with *RANDOM* read-modify-writes.  That scatter makes IS a
  cache-thrashing co-runner — with FT, the paper's example of VNM DDR
  traffic growing *more* than 4x (Figure 12), "due to memory port
  contention and cache interference".
* **communication** — every repetition redistributes keys with an
  all-to-all plus an allreduce of bucket sizes.
"""

from __future__ import annotations

from ..compiler.ir import CommKind, CommOp, Loop, Phase, Program
from ..mem import AccessKind, AccessPattern, StreamAccess
from .base import BenchmarkInfo, NPBBuilder, mix

MB = 1024 * 1024


class ISBuilder(NPBBuilder):
    """Program builder for IS."""

    info = BenchmarkInfo(
        code="IS",
        full_name="Integer Sort",
        description="integer key ranking: histogram + all-to-all",
    )

    REPETITIONS = 10

    def build(self, num_ranks: int, problem_class: str = "C") -> Program:
        self.validate_ranks(num_ranks)
        scale = (self.class_scale(problem_class)
                 * self.info.default_ranks() / num_ranks)
        keys = self.footprint(2.2 * MB * scale)      # key array (streams)
        buckets = self.footprint(2.0 * MB * scale)   # histogram (random)
        n_keys = max(1, keys // 4)

        rank_keys = Loop(
            name="is.rank",
            # per key: load, bucket index arithmetic, histogram r-m-w
            body=mix(INT_ALU=6, INT_MUL=0.5, LOAD=2, STORE=1,
                     BRANCH=1.0, OTHER=0.3),
            trip_count=n_keys,
            executions=self.REPETITIONS,
            streams=(
                StreamAccess("is.keys", footprint_bytes=keys,
                             stride_bytes=4, element_bytes=4),
                StreamAccess("is.buckets", footprint_bytes=buckets,
                             accesses=n_keys, element_bytes=4,
                             kind=AccessKind.READWRITE,
                             pattern=AccessPattern.RANDOM),
            ),
            data_parallel_fraction=0.0,
            serial_fraction=0.35,
            serial_floor=0.15,
            overhead_fraction=0.30,
            hoistable_fraction=0.05,
        )
        verify = Loop(
            name="is.verify",
            # the benchmark's small FP bookkeeping (timing, checksums)
            body=mix(FP_FMA=3, FP_ADDSUB=1, LOAD=2, STORE=0.5,
                     INT_ALU=2, BRANCH=0.3),
            trip_count=20_000,
            executions=self.REPETITIONS,
            streams=(),
            data_parallel_fraction=0.0,
            serial_fraction=0.3,
            serial_floor=0.1,
            overhead_fraction=0.3,
            hoistable_fraction=0.05,
        )
        redistribute = CommOp(
            CommKind.ALLTOALL,
            bytes_per_rank=self.footprint(1.1 * MB * scale,
                                          minimum=4096),
            repeats=self.REPETITIONS)
        sizes = CommOp(CommKind.ALLREDUCE,
                       bytes_per_rank=self.footprint(8 * 1024 * scale,
                                                     minimum=256),
                       repeats=self.REPETITIONS)
        return Program(name="IS", phases=[
            Phase(loops=(rank_keys,), comm=redistribute,
                  name="rank + redistribute"),
            Phase(loops=(verify,), comm=sizes,
                  name="verify + bucket sizes"),
        ])


def build(num_ranks: int, problem_class: str = "C") -> Program:
    """Build IS's per-rank Program."""
    return ISBuilder().build(num_ranks, problem_class)
