"""MG — MultiGrid: V-cycles of a 3D Poisson solver.

Workload character (NAS MG, class C: 512^3 grid, 20 V-cycles):

* **compute** — 27/7-point stencil smoothing, residual, restriction and
  prolongation: streaming FP add/sub + FMA over regular grids.  The
  stencils are textbook data-parallel code, which is why the paper's
  Figure 6 shows MG dominated by *SIMD add-sub and SIMD FMA* once
  ``-qarch=440d`` is on (``data_parallel_fraction = 0.75``).
* **memory** — three tiers per rank: the coarse-grid hierarchy (small,
  swept every cycle — cache-resident from 2 MB up), the fine grid
  (medium, the 4 MB step of Figure 11), and a full-resolution work
  array touched once per cycle (streaming, never resident).
* **communication** — face halo exchanges with the six grid neighbours
  every smoothing sweep, plus one tree-network allreduce per cycle for
  the residual norm.
"""

from __future__ import annotations

from ..compiler.ir import CommKind, CommOp, Phase, Program
from ..mem import AccessKind, StreamAccess
from .base import BenchmarkInfo, NPBBuilder, mix

MB = 1024 * 1024


class MGBuilder(NPBBuilder):
    """Program builder for MG."""

    info = BenchmarkInfo(
        code="MG",
        full_name="MultiGrid",
        description="V-cycle multigrid on a 3D Poisson problem",
    )

    V_CYCLES = 20
    SWEEPS_PER_CYCLE = 3  # pre-smooth + post-smooth + residual

    def build(self, num_ranks: int, problem_class: str = "C") -> Program:
        self.validate_ranks(num_ranks)
        scale = (self.class_scale(problem_class)
                 * self.info.default_ranks() / num_ranks)
        fine_u = self.footprint(0.55 * MB * scale)
        fine_f = self.footprint(0.28 * MB * scale)
        coarse = self.footprint(0.28 * MB * scale)
        work = self.footprint(2.0 * MB * scale)
        fine_points = max(1, fine_u // 8)
        sweeps = self.V_CYCLES * self.SWEEPS_PER_CYCLE

        from ..compiler.ir import Loop

        smooth = Loop(
            name="mg.smooth_fine",
            # 7-point stencil: 6 adds + weighted update (2 FMA)
            body=mix(FP_ADDSUB=5, FP_FMA=2, FP_MUL=0.5,
                     LOAD=8, STORE=1, INT_ALU=3, BRANCH=0.3, OTHER=0.2),
            trip_count=fine_points,
            executions=sweeps,
            streams=(
                StreamAccess("mg.u", footprint_bytes=fine_u,
                             kind=AccessKind.READWRITE),
                StreamAccess("mg.f", footprint_bytes=fine_f),
            ),
            data_parallel_fraction=0.75,
            serial_fraction=0.25,
            serial_floor=0.05,
            overhead_fraction=0.35,
            hoistable_fraction=0.10,
        )
        coarse_loop = Loop(
            name="mg.coarse_hierarchy",
            body=mix(FP_ADDSUB=5, FP_FMA=2, FP_MUL=0.5,
                     LOAD=8, STORE=1, INT_ALU=3, BRANCH=0.3, OTHER=0.2),
            trip_count=max(1, coarse // 8),
            executions=self.V_CYCLES * 4,  # all levels, both directions
            streams=(StreamAccess("mg.coarse", footprint_bytes=coarse,
                                  kind=AccessKind.READWRITE),),
            data_parallel_fraction=0.70,
            serial_fraction=0.25,
            serial_floor=0.05,
            overhead_fraction=0.35,
            hoistable_fraction=0.10,
        )
        interp = Loop(
            name="mg.residual_transfer",
            # restriction/prolongation over the full-resolution work array
            body=mix(FP_ADDSUB=3, FP_FMA=1, LOAD=5, STORE=2,
                     INT_ALU=3, BRANCH=0.3, OTHER=0.2),
            trip_count=max(1, work // 8),
            executions=8,
            streams=(StreamAccess("mg.work", footprint_bytes=work,
                                  kind=AccessKind.READWRITE),),
            data_parallel_fraction=0.70,
            serial_fraction=0.2,
            serial_floor=0.05,
            overhead_fraction=0.35,
            hoistable_fraction=0.08,
        )
        halo = CommOp(CommKind.HALO,
                      bytes_per_rank=self.footprint(60 * 1024 * scale,
                                                    minimum=512),
                      neighbors=6, repeats=sweeps)
        norm = CommOp(CommKind.ALLREDUCE, bytes_per_rank=8,
                      repeats=self.V_CYCLES)
        return Program(name="MG", phases=[
            Phase(loops=(smooth, coarse_loop), comm=halo,
                  name="v-cycle smoothing"),
            Phase(loops=(interp,), comm=norm, name="transfer + norm"),
        ])


def build(num_ranks: int, problem_class: str = "C") -> Program:
    """Build MG's per-rank Program."""
    return MGBuilder().build(num_ranks, problem_class)
