"""Common scaffolding for the NAS Parallel Benchmark workload models.

Each benchmark module builds a :class:`~repro.compiler.ir.Program`
describing its per-rank execution — loop templates with instruction
mixes, memory stream descriptors, and communication phases — at the
``-O -qstrict`` compilation baseline.

Scaling note (documented in DESIGN.md): per-rank memory footprints are
scaled so that footprint-to-cache ratios reproduce the paper's observed
regimes (the class-C hot set fits a 4 MB node L3; see Figure 11), not
so that absolute byte counts match a real class-C run.  The simulator's
deliverable is the *shape* of each figure; instruction-mix ratios and
capacity cliffs are preserved, magnitudes are model-scale.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict

from ..compiler.ir import Program
from ..isa import InstructionMix, OpClass

#: Problem classes: linear scale factors on work and footprints relative
#: to class C (the paper's experiments all use class C).
PROBLEM_CLASSES: Dict[str, float] = {
    "S": 1.0 / 256.0,
    "W": 1.0 / 64.0,
    "A": 1.0 / 16.0,
    "B": 1.0 / 4.0,
    "C": 1.0,
}

#: The rank count the paper uses for most benchmarks...
DEFAULT_RANKS = 128
#: ...and for SP/BT, which need a square process count (Section V).
SQUARE_RANKS = 121


@dataclass(frozen=True)
class BenchmarkInfo:
    """Identity of one NAS benchmark."""

    code: str
    full_name: str
    description: str
    square_ranks: bool = False

    def default_ranks(self) -> int:
        return SQUARE_RANKS if self.square_ranks else DEFAULT_RANKS


def mix(**counts: float) -> InstructionMix:
    """Shorthand: ``mix(FP_FMA=8, LOAD=6)`` -> InstructionMix."""
    return InstructionMix({OpClass[name]: value
                           for name, value in counts.items()})


class NPBBuilder(abc.ABC):
    """Base class for the per-benchmark Program builders."""

    info: BenchmarkInfo

    def class_scale(self, problem_class: str) -> float:
        try:
            return PROBLEM_CLASSES[problem_class]
        except KeyError:
            raise ValueError(
                f"unknown problem class {problem_class!r}; "
                f"choose from {sorted(PROBLEM_CLASSES)}") from None

    def validate_ranks(self, num_ranks: int) -> None:
        if num_ranks <= 0:
            raise ValueError("need at least one rank")
        if self.info.square_ranks:
            root = int(round(num_ranks ** 0.5))
            if root * root != num_ranks:
                raise ValueError(
                    f"{self.info.code} requires a square process count "
                    f"(got {num_ranks}); the paper uses {SQUARE_RANKS}")

    @abc.abstractmethod
    def build(self, num_ranks: int, problem_class: str = "C") -> Program:
        """The per-rank Program at the -O -qstrict baseline."""

    # ------------------------------------------------------------------
    # shared scaling helpers
    # ------------------------------------------------------------------
    def per_rank(self, total_at_class_c: float, num_ranks: int,
                 problem_class: str) -> float:
        """Split a class-scaled whole-job quantity across ranks."""
        self.validate_ranks(num_ranks)
        return (total_at_class_c * self.class_scale(problem_class)
                / num_ranks)

    @staticmethod
    def footprint(scaled_bytes: float, minimum: int = 4096) -> int:
        """A (pre-scaled) footprint, floored so descriptors stay valid."""
        return max(minimum, int(scaled_bytes))
