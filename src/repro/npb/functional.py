"""Small *runnable* implementations of the eight NAS kernels.

The workload models in this package describe each benchmark's loops as
instruction-mix templates.  To keep those templates honest, this module
implements each kernel's numerical core at miniature scale in numpy —
real FFTs, real conjugate-gradient iterations, real SSOR sweeps — with
known analytic flop counts.  The test suite verifies the numerics
(residuals shrink, sorts sort, transforms invert) and the calibration
tests check the workload models' FP-op ratios against these kernels.

These are *not* the benchmarks the simulator runs (the simulator runs
the loop-IR models); they are the ground truth the models are built
from, standing in for the Fortran NAS 2.0 sources the paper used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np


@dataclass
class KernelResult:
    """Outcome of one functional kernel run."""

    name: str
    verified: bool
    metric: float            #: kernel-specific verification value
    flops: float             #: analytic floating point operation count
    details: Dict[str, float]


# ---------------------------------------------------------------------------
# EP — embarrassingly parallel: Marsaglia-polar Gaussian pairs
# ---------------------------------------------------------------------------
def run_ep(n_pairs: int = 4096, seed: int = 271828183) -> KernelResult:
    """Generate Gaussian deviates and count them in square annuli.

    The real EP uses a linear-congruential stream and tallies the
    number of pairs in each ring ``k <= max(|x|,|y|) < k+1``.
    """
    rng = np.random.default_rng(seed)
    accepted_x = []
    accepted_y = []
    generated = 0
    while sum(len(a) for a in accepted_x) < n_pairs:
        u = rng.uniform(-1.0, 1.0, size=(n_pairs, 2))
        t = (u ** 2).sum(axis=1)
        mask = (t > 0.0) & (t <= 1.0)
        factor = np.sqrt(-2.0 * np.log(t[mask]) / t[mask])
        accepted_x.append(u[mask, 0] * factor)
        accepted_y.append(u[mask, 1] * factor)
        generated += n_pairs
    x = np.concatenate(accepted_x)[:n_pairs]
    y = np.concatenate(accepted_y)[:n_pairs]
    rings = np.floor(np.maximum(np.abs(x), np.abs(y))).astype(int)
    counts = np.bincount(np.clip(rings, 0, 9), minlength=10)
    # ~10 flops per generated candidate pair (squares, sums, sqrt, log)
    flops = 10.0 * generated
    gaussian_mean = float(np.mean(np.concatenate([x, y])))
    return KernelResult(
        name="EP",
        verified=bool(counts.sum() == n_pairs and abs(gaussian_mean) < 0.1),
        metric=gaussian_mean,
        flops=flops,
        details={"pairs": float(n_pairs),
                 "ring0_fraction": counts[0] / n_pairs},
    )


# ---------------------------------------------------------------------------
# CG — conjugate gradient on a sparse SPD matrix
# ---------------------------------------------------------------------------
def _sparse_spd(n: int, nnz_per_row: int, rng: np.random.Generator
                ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """A random sparse SPD matrix in symmetric COO form.

    Off-diagonal entries come in (i,j)/(j,i) pairs; the diagonal
    dominates the absolute row sums, guaranteeing positive
    definiteness.
    """
    m = n * nnz_per_row // 2
    rows = rng.integers(0, n, size=m)
    cols = rng.integers(0, n, size=m)
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    vals = rng.uniform(0.01, 0.5, size=len(rows))
    row_sums = np.zeros(n)
    np.add.at(row_sums, rows, vals)
    np.add.at(row_sums, cols, vals)
    diag = row_sums + 1.0
    return rows, cols, vals, diag


def run_cg(n: int = 1024, nnz_per_row: int = 12, iterations: int = 50,
           seed: int = 3) -> KernelResult:
    """CG iterations against a sparse SPD matrix.

    Mirrors NAS CG's structure: sparse matvec (indirect gather/scatter)
    plus dot products and AXPYs per iteration.
    """
    rng = np.random.default_rng(seed)
    rows, cols, vals, diag = _sparse_spd(n, nnz_per_row, rng)

    def matvec(p: np.ndarray) -> np.ndarray:
        y = diag * p
        np.add.at(y, rows, vals * p[cols])
        np.add.at(y, cols, vals * p[rows])
        return y

    b = np.ones(n)
    x = np.zeros(n)
    r = b - matvec(x)
    p = r.copy()
    rho = float(r @ r)
    initial = rho
    for _ in range(iterations):
        q = matvec(p)
        alpha = rho / float(p @ q)
        x += alpha * p
        r -= alpha * q
        rho_new = float(r @ r)
        beta = rho_new / rho
        p = r + beta * p
        rho = rho_new
    # per iteration: matvec 2*n*nnz + 2 dots (2n each) + 3 axpy (2n each)
    flops = iterations * (2.0 * n * nnz_per_row + 10.0 * n)
    return KernelResult(
        name="CG",
        verified=rho < initial * 1e-8,
        metric=float(np.sqrt(rho)),
        flops=flops,
        details={"initial_residual": np.sqrt(initial),
                 "final_residual": np.sqrt(rho)},
    )


# ---------------------------------------------------------------------------
# MG — multigrid V-cycle on a 3D Poisson problem
# ---------------------------------------------------------------------------
def _smooth(u: np.ndarray, f: np.ndarray, sweeps: int = 2) -> np.ndarray:
    """Weighted-Jacobi smoothing of -lap(u) = f (7-point stencil)."""
    for _ in range(sweeps):
        nb = (np.roll(u, 1, 0) + np.roll(u, -1, 0)
              + np.roll(u, 1, 1) + np.roll(u, -1, 1)
              + np.roll(u, 1, 2) + np.roll(u, -1, 2))
        u = u + 0.8 * ((nb + f) / 6.0 - u)
    return u


def _residual(u: np.ndarray, f: np.ndarray) -> np.ndarray:
    nb = (np.roll(u, 1, 0) + np.roll(u, -1, 0)
          + np.roll(u, 1, 1) + np.roll(u, -1, 1)
          + np.roll(u, 1, 2) + np.roll(u, -1, 2))
    return f - (6.0 * u - nb)


def run_mg(size: int = 32, v_cycles: int = 4, seed: int = 7) -> KernelResult:
    """V-cycles of geometric multigrid on a periodic Poisson problem."""
    if size & (size - 1):
        raise ValueError("grid size must be a power of two")
    rng = np.random.default_rng(seed)
    f = rng.standard_normal((size, size, size))
    f -= f.mean()  # solvability on the periodic domain
    u = np.zeros_like(f)

    def v_cycle(u: np.ndarray, f: np.ndarray) -> np.ndarray:
        if u.shape[0] <= 4:
            return _smooth(u, f, sweeps=10)
        u = _smooth(u, f)
        r = _residual(u, f)
        coarse_r = r.reshape(r.shape[0] // 2, 2, r.shape[1] // 2, 2,
                             r.shape[2] // 2, 2).mean(axis=(1, 3, 5))
        coarse_e = v_cycle(np.zeros_like(coarse_r), coarse_r)
        e = np.repeat(np.repeat(np.repeat(coarse_e, 2, 0), 2, 1), 2, 2)
        return _smooth(u + e, f)

    r0 = float(np.linalg.norm(_residual(u, f)))
    for _ in range(v_cycles):
        u = v_cycle(u, f)
    r1 = float(np.linalg.norm(_residual(u, f)))
    # ~ (2 smooths + residual) x ~14 flops/point per level, levels sum
    # to 8/7 of the fine grid
    flops = v_cycles * 3 * 14.0 * size ** 3 * 8.0 / 7.0
    return KernelResult(
        name="MG",
        verified=r1 < 0.2 * r0,
        metric=r1 / r0,
        flops=flops,
        details={"initial_residual": r0, "final_residual": r1},
    )


# ---------------------------------------------------------------------------
# FT — 3D FFT PDE solver
# ---------------------------------------------------------------------------
def run_ft(size: int = 32, steps: int = 3, seed: int = 11) -> KernelResult:
    """Spectral solve of a 3D diffusion-like PDE: forward FFT, evolve
    with exponential factors per step, inverse FFT (the NAS FT loop)."""
    rng = np.random.default_rng(seed)
    u0 = (rng.standard_normal((size, size, size))
          + 1j * rng.standard_normal((size, size, size)))
    freq = np.fft.fftfreq(size) * size
    kx, ky, kz = np.meshgrid(freq, freq, freq, indexing="ij")
    k2 = kx ** 2 + ky ** 2 + kz ** 2
    alpha = 1e-6
    u_hat = np.fft.fftn(u0)
    checksums = []
    for step in range(1, steps + 1):
        evolved = u_hat * np.exp(-4.0 * alpha * np.pi ** 2 * k2 * step)
        u = np.fft.ifftn(evolved)
        checksums.append(complex(u.sum()))
    # roundtrip check: step "0" recovers the input
    roundtrip = np.fft.ifftn(u_hat)
    err = float(np.abs(roundtrip - u0).max())
    n3 = size ** 3
    # one forward + steps inverse FFTs: 5 N log2 N flops each (complex)
    flops = (1 + steps) * 5.0 * n3 * np.log2(n3) + steps * 6.0 * n3
    return KernelResult(
        name="FT",
        verified=err < 1e-10,
        metric=abs(checksums[-1]),
        flops=flops,
        details={"roundtrip_error": err,
                 "checksum_real": checksums[-1].real},
    )


# ---------------------------------------------------------------------------
# IS — integer sort (bucketed key ranking)
# ---------------------------------------------------------------------------
def run_is(n_keys: int = 1 << 16, max_key: int = 1 << 11,
           seed: int = 13) -> KernelResult:
    """Rank integer keys by counting (the NAS IS algorithm).

    NAS IS generates Gaussian-ish keys, histograms them, prefix-sums
    the histogram, and verifies full ranking order.
    """
    rng = np.random.default_rng(seed)
    # approximate the NAS key distribution: average of 4 uniforms
    keys = (rng.integers(0, max_key, size=(n_keys, 4)).sum(axis=1)
            // 4).astype(np.int64)
    hist = np.bincount(keys, minlength=max_key)
    ranks = np.cumsum(hist) - hist  # rank of the first key of each value
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    verified = bool(np.all(np.diff(sorted_keys) >= 0))
    # ranking consistency: position of first occurrence matches prefix sum
    first_positions = np.searchsorted(sorted_keys, np.arange(max_key))
    verified = verified and bool(np.array_equal(
        first_positions, np.minimum(ranks, n_keys)))
    return KernelResult(
        name="IS",
        verified=verified,
        metric=float(hist.max()),
        flops=0.0,  # IS is an integer benchmark: its FP content is tiny
        details={"keys": float(n_keys), "max_key": float(max_key)},
    )


# ---------------------------------------------------------------------------
# LU — SSOR-iterated implicit solver
# ---------------------------------------------------------------------------
def run_lu(size: int = 24, iterations: int = 30,
           omega: float = 1.2, seed: int = 17) -> KernelResult:
    """SSOR sweeps on a 3D 7-point system (the LU kernel's structure).

    The defining property is the *wavefront dependence*: the lower
    sweep uses freshly-updated values at (i-1, j-1, k-1), which is what
    makes LU resistant to SIMDization.
    """
    rng = np.random.default_rng(seed)
    n = size
    f = rng.standard_normal((n, n, n))
    u = np.zeros((n, n, n))
    diag = 6.0
    r0 = None
    for _ in range(iterations):
        # forward (lower-triangular) sweep with true dependences
        for i in range(1, n - 1):
            for j in range(1, n - 1):
                # vectorised along k but dependent across i, j
                u[i, j, 1:-1] = (1 - omega) * u[i, j, 1:-1] + (
                    omega / diag) * (
                    f[i, j, 1:-1]
                    + u[i - 1, j, 1:-1] + u[i + 1, j, 1:-1]
                    + u[i, j - 1, 1:-1] + u[i, j + 1, 1:-1]
                    + u[i, j, :-2] + u[i, j, 2:])
        if r0 is None:
            interior = (6.0 * u[1:-1, 1:-1, 1:-1]
                        - u[:-2, 1:-1, 1:-1] - u[2:, 1:-1, 1:-1]
                        - u[1:-1, :-2, 1:-1] - u[1:-1, 2:, 1:-1]
                        - u[1:-1, 1:-1, :-2] - u[1:-1, 1:-1, 2:])
            r0 = float(np.linalg.norm(f[1:-1, 1:-1, 1:-1] - interior))
    interior = (6.0 * u[1:-1, 1:-1, 1:-1]
                - u[:-2, 1:-1, 1:-1] - u[2:, 1:-1, 1:-1]
                - u[1:-1, :-2, 1:-1] - u[1:-1, 2:, 1:-1]
                - u[1:-1, 1:-1, :-2] - u[1:-1, 1:-1, 2:])
    r1 = float(np.linalg.norm(f[1:-1, 1:-1, 1:-1] - interior))
    flops = iterations * 12.0 * (n - 2) ** 3
    return KernelResult(
        name="LU",
        verified=r1 < r0,
        metric=r1,
        flops=flops,
        details={"first_residual": r0, "final_residual": r1},
    )


# ---------------------------------------------------------------------------
# SP — scalar pentadiagonal (ADI line solves)
# ---------------------------------------------------------------------------
def _thomas(a: np.ndarray, b: np.ndarray, c: np.ndarray,
            d: np.ndarray) -> np.ndarray:
    """Tridiagonal Thomas solve along the last axis (batched)."""
    n = d.shape[-1]
    cp = np.zeros_like(d)
    dp = np.zeros_like(d)
    cp[..., 0] = c[..., 0] / b[..., 0]
    dp[..., 0] = d[..., 0] / b[..., 0]
    for i in range(1, n):
        m = b[..., i] - a[..., i] * cp[..., i - 1]
        cp[..., i] = c[..., i] / m
        dp[..., i] = (d[..., i] - a[..., i] * dp[..., i - 1]) / m
    x = np.zeros_like(d)
    x[..., -1] = dp[..., -1]
    for i in range(n - 2, -1, -1):
        x[..., i] = dp[..., i] - cp[..., i] * x[..., i + 1]
    return x


def run_sp(size: int = 24, steps: int = 4, seed: int = 19) -> KernelResult:
    """ADI time steps: implicit line solves along x, then y, then z.

    (The real SP uses pentadiagonal systems; tridiagonal line solves
    exercise the same recurrence structure and access patterns.)
    """
    rng = np.random.default_rng(seed)
    n = size
    u = rng.standard_normal((n, n, n))
    nu = 0.05
    lower = np.full((n, n, n), -nu)
    diag = np.full((n, n, n), 1.0 + 2.0 * nu)
    upper = np.full((n, n, n), -nu)
    initial_energy = float((u ** 2).sum())
    for _ in range(steps):
        u = _thomas(lower, diag, upper, u)                   # z lines
        u = _thomas(lower, diag, upper,
                    u.transpose(0, 2, 1)).transpose(0, 2, 1)  # y lines
        u = _thomas(lower, diag, upper,
                    u.transpose(2, 1, 0)).transpose(2, 1, 0)  # x lines
    final_energy = float((u ** 2).sum())
    # implicit diffusion must strictly dissipate energy
    flops = steps * 3 * 8.0 * n ** 3  # ~8 flops/point per line solve
    return KernelResult(
        name="SP",
        verified=final_energy < initial_energy,
        metric=final_energy / initial_energy,
        flops=flops,
        details={"initial_energy": initial_energy,
                 "final_energy": final_energy},
    )


# ---------------------------------------------------------------------------
# BT — block tridiagonal (same ADI shape, dense blocks per point)
# ---------------------------------------------------------------------------
def run_bt(size: int = 12, steps: int = 2, block: int = 3,
           seed: int = 23) -> KernelResult:
    """Block-tridiagonal ADI line solves with dense per-point blocks.

    BT's distinguishing feature over SP: each grid point carries a
    ``block x block`` system, so line solves do small dense
    matrix-vector work (high FMA density).
    """
    rng = np.random.default_rng(seed)
    n = size
    u = rng.standard_normal((n, n, n, block))
    coupling = 0.05 * rng.standard_normal((block, block))
    a_block = -(np.eye(block) * 0.05 + coupling * 0.01)
    b_block = np.eye(block) * (1.0 + 2.0 * 0.05) + coupling * 0.02
    initial_energy = float((u ** 2).sum())

    def block_lines(u: np.ndarray) -> np.ndarray:
        """Block-Thomas along axis 2 for every (i, j) line."""
        out = np.empty_like(u)
        binv = np.linalg.inv(b_block)
        for i in range(n):
            for j in range(n):
                d = u[i, j]
                x = np.empty_like(d)
                # forward elimination with constant blocks
                cp = [binv @ a_block]
                dp = [binv @ d[0]]
                for k in range(1, n):
                    m = np.linalg.inv(b_block - a_block @ cp[-1])
                    cp.append(m @ a_block)
                    dp.append(m @ (d[k] - a_block @ dp[-1]))
                x[n - 1] = dp[-1]
                for k in range(n - 2, -1, -1):
                    x[k] = dp[k] - cp[k] @ x[k + 1]
                out[i, j] = x
        return out

    for _ in range(steps):
        u = block_lines(u)
        u = block_lines(u.transpose(0, 2, 1, 3)).transpose(0, 2, 1, 3)
        u = block_lines(u.transpose(2, 1, 0, 3)).transpose(2, 1, 0, 3)
    final_energy = float((u ** 2).sum())
    flops = steps * 3 * n ** 3 * (4.0 * block ** 3 + 4.0 * block ** 2)
    return KernelResult(
        name="BT",
        verified=final_energy < initial_energy and np.isfinite(
            final_energy),
        metric=final_energy / initial_energy,
        flops=flops,
        details={"initial_energy": initial_energy,
                 "final_energy": final_energy},
    )


#: All functional kernels by benchmark name.
FUNCTIONAL_KERNELS = {
    "EP": run_ep,
    "CG": run_cg,
    "MG": run_mg,
    "FT": run_ft,
    "IS": run_is,
    "LU": run_lu,
    "SP": run_sp,
    "BT": run_bt,
}
