"""SP — Scalar Pentadiagonal: ADI with per-line scalar solves.

Workload character (NAS SP, class C: 162^3 grid, 400 steps, and a
*square* process count — the paper runs it on 121 ranks):

* **compute** — three ADI factorisation directions per step, each a
  batch of scalar pentadiagonal line solves.  Forward elimination
  carries a divide per point (SP's visible FP-div share) and a true
  recurrence along each line (``serial_floor = 0.28``); lines are
  independent of each other, so some SIMD is extractable across lines
  (``data_parallel_fraction = 0.12``).
* **memory** — x-direction sweeps are unit-stride; y/z sweeps walk the
  grid at a large stride, defeating the L2 prefetcher (the STRIDED
  stream below).
* **communication** — face exchanges with the four neighbours of the
  2D (square!) rank decomposition after each direction.
"""

from __future__ import annotations

from ..compiler.ir import CommKind, CommOp, Loop, Phase, Program
from ..mem import AccessKind, AccessPattern, StreamAccess
from .base import BenchmarkInfo, NPBBuilder, mix

MB = 1024 * 1024


class SPBuilder(NPBBuilder):
    """Program builder for SP."""

    info = BenchmarkInfo(
        code="SP",
        full_name="Scalar Penta-diagonal Solver",
        description="ADI line solves, square process grid",
        square_ranks=True,
    )

    TIME_STEPS = 100  # model-scale (class C runs 400; same shape)

    def build(self, num_ranks: int, problem_class: str = "C") -> Program:
        self.validate_ranks(num_ranks)
        scale = (self.class_scale(problem_class)
                 * self.info.default_ranks() / num_ranks)
        solution = self.footprint(0.60 * MB * scale)
        rhs = self.footprint(2.2 * MB * scale)      # rebuilt, streams
        coeffs = self.footprint(0.28 * MB * scale)  # line coefficients
        points = max(1, solution // 8)

        x_solve = Loop(
            name="sp.x_solve",
            body=mix(FP_FMA=6, FP_MUL=3, FP_ADDSUB=4, FP_DIV=0.8,
                     LOAD=10, STORE=3, INT_ALU=4, BRANCH=0.4, OTHER=0.3),
            trip_count=points,
            executions=self.TIME_STEPS,
            streams=(
                StreamAccess("sp.solution", footprint_bytes=solution,
                             kind=AccessKind.READWRITE),
                StreamAccess("sp.coeffs", footprint_bytes=coeffs),
            ),
            data_parallel_fraction=0.12,
            serial_fraction=0.45,
            serial_floor=0.28,
            overhead_fraction=0.35,
            hoistable_fraction=0.10,
        )
        yz_solve = Loop(
            name="sp.yz_solve",
            body=mix(FP_FMA=6, FP_MUL=3, FP_ADDSUB=4, FP_DIV=0.8,
                     LOAD=10, STORE=3, INT_ALU=5, BRANCH=0.4, OTHER=0.3),
            trip_count=points,
            executions=self.TIME_STEPS * 2,  # y then z direction
            streams=(
                StreamAccess("sp.solution", footprint_bytes=solution,
                             kind=AccessKind.READWRITE,
                             stride_bytes=1296,  # the cross-line stride
                             accesses=points,
                             pattern=AccessPattern.STRIDED),
                StreamAccess("sp.coeffs", footprint_bytes=coeffs),
            ),
            data_parallel_fraction=0.12,
            serial_fraction=0.45,
            serial_floor=0.28,
            overhead_fraction=0.35,
            hoistable_fraction=0.10,
        )
        rhs_build = Loop(
            name="sp.rhs",
            body=mix(FP_FMA=5, FP_ADDSUB=3, FP_MUL=2,
                     LOAD=9, STORE=3, INT_ALU=3, BRANCH=0.3, OTHER=0.2),
            trip_count=max(1, rhs // 16),
            executions=self.TIME_STEPS // 4,
            streams=(StreamAccess("sp.rhs", footprint_bytes=rhs,
                                  kind=AccessKind.READWRITE),),
            data_parallel_fraction=0.35,
            serial_fraction=0.25,
            serial_floor=0.05,
            overhead_fraction=0.35,
            hoistable_fraction=0.10,
        )
        faces = CommOp(
            CommKind.HALO,
            bytes_per_rank=self.footprint(90 * 1024 * scale,
                                          minimum=1024),
            neighbors=4, repeats=self.TIME_STEPS * 3)
        return Program(name="SP", phases=[
            Phase(loops=(x_solve, yz_solve), comm=faces,
                  name="ADI direction solves + face exchange"),
            Phase(loops=(rhs_build,), name="RHS rebuild"),
        ])


def build(num_ranks: int, problem_class: str = "C") -> Program:
    """Build SP's per-rank Program."""
    return SPBuilder().build(num_ranks, problem_class)
