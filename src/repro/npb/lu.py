"""LU — the SSOR-iterated implicit Navier-Stokes solver.

Workload character (NAS LU, class C: 162^3 grid, 250 time steps):

* **compute** — SSOR sweeps with a genuine *wavefront recurrence*:
  point (i,j,k) needs freshly-updated (i-1,j,k), (i,j-1,k), (i,j,k-1).
  That dependence is why LU resists SIMDization
  (``data_parallel_fraction = 0.05``, high ``serial_floor``) and shows
  up as single FMA in Figure 6 with modest compiler gains in Figure 10.
* **memory** — the five solution variables are the medium tier, the
  Jacobian blocks stream (rebuilt each step), the per-pencil buffers
  are small and resident.
* **communication** — the wavefront pipelines across ranks with *many
  small* nearest-neighbour messages, LU's signature network load.
"""

from __future__ import annotations

from ..compiler.ir import CommKind, CommOp, Loop, Phase, Program
from ..mem import AccessKind, StreamAccess
from .base import BenchmarkInfo, NPBBuilder, mix

MB = 1024 * 1024


class LUBuilder(NPBBuilder):
    """Program builder for LU."""

    info = BenchmarkInfo(
        code="LU",
        full_name="LU Solver",
        description="SSOR wavefront sweeps of an implicit CFD solver",
    )

    TIME_STEPS = 75  # model-scale (class C runs 250; same per-step shape)

    def build(self, num_ranks: int, problem_class: str = "C") -> Program:
        self.validate_ranks(num_ranks)
        scale = (self.class_scale(problem_class)
                 * self.info.default_ranks() / num_ranks)
        solution = self.footprint(0.60 * MB * scale)  # 5 solution vars
        jacobian = self.footprint(2.4 * MB * scale)   # streamed blocks
        pencils = self.footprint(0.20 * MB * scale)   # sweep buffers
        points = max(1, solution // 8)
        sweeps = self.TIME_STEPS * 2  # lower + upper triangular sweeps

        ssor = Loop(
            name="lu.ssor_sweep",
            # per point per sweep: 5-variable stencil update
            body=mix(FP_FMA=8, FP_ADDSUB=3, FP_MUL=2, FP_DIV=0.3,
                     LOAD=12, STORE=2.5, INT_ALU=4, BRANCH=0.5,
                     OTHER=0.3),
            trip_count=points,
            executions=sweeps,
            streams=(
                StreamAccess("lu.solution", footprint_bytes=solution,
                             kind=AccessKind.READWRITE),
                StreamAccess("lu.pencils", footprint_bytes=pencils,
                             kind=AccessKind.READWRITE),
            ),
            data_parallel_fraction=0.05,
            serial_fraction=0.50,
            serial_floor=0.35,  # the wavefront recurrence
            overhead_fraction=0.30,
            hoistable_fraction=0.08,
        )
        jacobians = Loop(
            name="lu.jacobians",
            # rebuild the block Jacobians each step: streaming FMA
            body=mix(FP_FMA=6, FP_MUL=3, FP_ADDSUB=2,
                     LOAD=8, STORE=4, INT_ALU=3, BRANCH=0.3, OTHER=0.2),
            trip_count=max(1, jacobian // 16),
            executions=self.TIME_STEPS // 8,  # rebuilt periodically
            streams=(StreamAccess("lu.jacobian",
                                  footprint_bytes=jacobian,
                                  kind=AccessKind.READWRITE),),
            data_parallel_fraction=0.20,
            serial_fraction=0.25,
            serial_floor=0.05,
            overhead_fraction=0.30,
            hoistable_fraction=0.10,
        )
        wavefront = CommOp(
            CommKind.HALO,
            bytes_per_rank=self.footprint(20 * 1024 * scale,
                                          minimum=256),
            neighbors=4, repeats=sweeps * 2)
        norm = CommOp(CommKind.ALLREDUCE, bytes_per_rank=40,
                      repeats=self.TIME_STEPS // 5)
        return Program(name="LU", phases=[
            Phase(loops=(ssor,), comm=wavefront,
                  name="SSOR sweeps + wavefront exchange"),
            Phase(loops=(jacobians,), comm=norm,
                  name="jacobians + residual norm"),
        ])


def build(num_ranks: int, problem_class: str = "C") -> Program:
    """Build LU's per-rank Program."""
    return LUBuilder().build(num_ranks, problem_class)
