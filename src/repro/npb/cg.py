"""CG — Conjugate Gradient: sparse eigenvalue estimation.

Workload character (NAS CG, class C: n=150,000, 75 outer iterations):

* **compute** — the sparse matrix-vector product dominates: one FMA
  per nonzero behind an *indirect gather* (``p[colidx[k]]``).  The
  gather's data dependence defeats the SIMDizer
  (``data_parallel_fraction = 0.05``), so Figure 6 shows CG as single
  FMA, and its compiler gains (Figure 9) are modest scalar cleanups.
* **memory** — matrix values/indices stream sequentially (the medium
  tier); the gathered vector is RANDOM over its footprint; the small
  CG vectors (p, q, r, z) are the cache-resident tier.
* **communication** — two scalar allreduces per iteration (the dot
  products) on the tree network, plus partner exchanges of vector
  segments for the distributed matvec.
"""

from __future__ import annotations

from ..compiler.ir import CommKind, CommOp, Loop, Phase, Program
from ..mem import AccessKind, AccessPattern, StreamAccess
from .base import BenchmarkInfo, NPBBuilder, mix

MB = 1024 * 1024


class CGBuilder(NPBBuilder):
    """Program builder for CG."""

    info = BenchmarkInfo(
        code="CG",
        full_name="Conjugate Gradient",
        description="sparse SPD matvec + dot products, indirect gathers",
    )

    OUTER_ITERATIONS = 75
    INNER_CG = 25  # CG steps per outer eigenvalue iteration (folded)

    def build(self, num_ranks: int, problem_class: str = "C") -> Program:
        self.validate_ranks(num_ranks)
        scale = (self.class_scale(problem_class)
                 * self.info.default_ranks() / num_ranks)
        matrix = self.footprint(1.8 * MB * scale)   # values + col indices
        vector = self.footprint(0.60 * MB * scale)  # the gathered vector
        small_vecs = self.footprint(0.30 * MB * scale)  # p, q, r, z
        nnz = max(1, matrix // 12)  # 8B value + 4B index per nonzero
        vec_len = max(1, small_vecs // 8)
        iters = self.OUTER_ITERATIONS

        matvec = Loop(
            name="cg.sparse_matvec",
            # per nonzero: load value + index, gather, one FMA
            body=mix(FP_FMA=1, LOAD=2.5, INT_ALU=1.5, BRANCH=0.1,
                     OTHER=0.05),
            trip_count=nnz,
            executions=iters,
            streams=(
                StreamAccess("cg.matrix", footprint_bytes=matrix),
                StreamAccess("cg.vector", footprint_bytes=vector,
                             accesses=nnz,
                             pattern=AccessPattern.RANDOM),
            ),
            data_parallel_fraction=0.05,
            serial_fraction=0.30,
            serial_floor=0.12,
            overhead_fraction=0.40,
            hoistable_fraction=0.08,
        )
        vector_ops = Loop(
            name="cg.vector_ops",
            # dots + three AXPYs per CG step over the resident vectors
            body=mix(FP_FMA=4, FP_ADDSUB=1, FP_MUL=1, FP_DIV=0.01,
                     LOAD=6, STORE=3, INT_ALU=2, BRANCH=0.2, OTHER=0.1),
            trip_count=vec_len,
            executions=iters * 3,
            streams=(
                StreamAccess("cg.small_vecs", footprint_bytes=small_vecs,
                             kind=AccessKind.READWRITE),
            ),
            data_parallel_fraction=0.10,
            serial_fraction=0.35,
            serial_floor=0.15,  # the dot-product reduction chain
            overhead_fraction=0.35,
            hoistable_fraction=0.08,
        )
        dots = CommOp(CommKind.ALLREDUCE, bytes_per_rank=8,
                      repeats=iters * self.INNER_CG * 2)
        # CG's vector-segment exchange crosses the processor grid (the
        # partner is half the grid away), so it stays inter-node even
        # in Virtual Node Mode.
        segments = CommOp(
            CommKind.PAIRWISE,
            bytes_per_rank=self.footprint(0.15 * MB * scale,
                                          minimum=1024),
            repeats=iters,
            partner_stride=max(1, num_ranks // 2))
        return Program(name="CG", phases=[
            Phase(loops=(matvec,), comm=segments,
                  name="matvec + segment exchange"),
            Phase(loops=(vector_ops,), comm=dots,
                  name="vector ops + dot reductions"),
        ])


def build(num_ranks: int, problem_class: str = "C") -> Program:
    """Build CG's per-rank Program."""
    return CGBuilder().build(num_ranks, problem_class)
