"""BT — Block Tri-diagonal: ADI with dense 5x5 blocks per point.

Workload character (NAS BT, class C: 162^3 grid, 200 steps, square
process count — the paper runs it on 121 ranks):

* **compute** — the same ADI shape as SP, but every grid point carries
  a dense 5x5 block system: block matrix-matrix and matrix-vector
  kernels give BT the *highest FMA density* of the suite (Figure 6
  shows BT essentially all single FMA).  The little 5x5 kernels are
  awkward for the two-wide SIMDizer (odd dimensions, register
  pressure): ``data_parallel_fraction = 0.15``.
* **memory** — the big block arrays stream; the line-solve workspace
  is resident.
* **communication** — face exchanges like SP, but with block payloads
  (bigger messages, fewer of them).
"""

from __future__ import annotations

from ..compiler.ir import CommKind, CommOp, Loop, Phase, Program
from ..mem import AccessKind, StreamAccess
from .base import BenchmarkInfo, NPBBuilder, mix

MB = 1024 * 1024


class BTBuilder(NPBBuilder):
    """Program builder for BT."""

    info = BenchmarkInfo(
        code="BT",
        full_name="Block Tri-diagonal Solver",
        description="ADI with dense 5x5 blocks, square process grid",
        square_ranks=True,
    )

    TIME_STEPS = 60  # model-scale (class C runs 200; same shape)

    def build(self, num_ranks: int, problem_class: str = "C") -> Program:
        self.validate_ranks(num_ranks)
        scale = (self.class_scale(problem_class)
                 * self.info.default_ranks() / num_ranks)
        solution = self.footprint(0.55 * MB * scale)
        blocks = self.footprint(2.6 * MB * scale)    # 5x5 block arrays
        workspace = self.footprint(0.28 * MB * scale)
        points = max(1, solution // 8)

        block_solve = Loop(
            name="bt.block_solve",
            # per point per direction: 5x5 block LU + back-substitution
            body=mix(FP_FMA=14, FP_MUL=4, FP_ADDSUB=4, FP_DIV=0.5,
                     LOAD=16, STORE=4, INT_ALU=5, BRANCH=0.5, OTHER=0.3),
            trip_count=points,
            executions=self.TIME_STEPS * 3,  # three ADI directions
            streams=(
                StreamAccess("bt.solution", footprint_bytes=solution,
                             kind=AccessKind.READWRITE),
                StreamAccess("bt.workspace", footprint_bytes=workspace,
                             kind=AccessKind.READWRITE),
            ),
            data_parallel_fraction=0.15,
            serial_fraction=0.35,
            serial_floor=0.20,
            overhead_fraction=0.30,
            hoistable_fraction=0.10,
        )
        block_assembly = Loop(
            name="bt.block_assembly",
            body=mix(FP_FMA=8, FP_MUL=3, FP_ADDSUB=3,
                     LOAD=10, STORE=5, INT_ALU=4, BRANCH=0.3, OTHER=0.2),
            trip_count=max(1, blocks // 24),
            executions=self.TIME_STEPS // 4,
            streams=(StreamAccess("bt.blocks", footprint_bytes=blocks,
                                  kind=AccessKind.READWRITE),),
            data_parallel_fraction=0.30,
            serial_fraction=0.25,
            serial_floor=0.05,
            overhead_fraction=0.30,
            hoistable_fraction=0.10,
        )
        faces = CommOp(
            CommKind.HALO,
            bytes_per_rank=self.footprint(140 * 1024 * scale,
                                          minimum=1024),
            neighbors=4, repeats=self.TIME_STEPS * 3)
        return Program(name="BT", phases=[
            Phase(loops=(block_solve,), comm=faces,
                  name="block line solves + face exchange"),
            Phase(loops=(block_assembly,), name="block assembly"),
        ])


def build(num_ranks: int, problem_class: str = "C") -> Program:
    """Build BT's per-rank Program."""
    return BTBuilder().build(num_ranks, problem_class)
