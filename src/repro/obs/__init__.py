"""Observability for the simulator itself: spans, metrics, logging.

The paper instruments Blue Gene/P; this package instruments the
*reproduction* — a LIKWID-style span tracer with wall-time and
simulated-cycle attributes, a metrics registry for the model's internal
hot paths, structured logging, and (via :mod:`repro.obs.timeline` /
:mod:`repro.obs.report`) job-level counter sampling with SUPReMM-style
run reports.  Everything defaults to off at near-zero cost; the CLI's
``--trace``/``--profile``/``--json``/``--sample-every`` flags (and
:func:`repro.obs.tracer.install`) switch recording on.

Artifacts a traced run exports:

* ``trace.json`` — Chrome/Perfetto-loadable span timeline (plus
  counter tracks when ``--sample-every`` is active);
* ``spans.jsonl`` — one span per line for ad-hoc analysis;
* ``metrics.json`` — the counters/gauges/histograms snapshot;
* ``timeline.jsonl`` — per-sample job telemetry records;
* ``report.md``/``report.json`` — ``python -m repro report`` summary.

One registry per process
------------------------
The tracer slot, the metrics :data:`REGISTRY`, and the timeline
recorder are **process-global**.  A :func:`repro.parallel.parallel_map`
pool worker therefore records into *its own* globals, which die with
the worker; the pool protocol compensates by shipping each task's
instrument state (``metrics.dump_state()``) and finished spans back
with the result, and merging them into the parent's registry/tracer
(``metrics.merge_state()`` / ``Tracer.absorb``).  Code that builds its
own private :class:`MetricsRegistry`/:class:`Tracer` is outside that
protocol and will not survive the process boundary.
"""

from . import logging, metrics, tracer
from . import report, timeline
from .logging import get_logger, kv
from .logging import setup as setup_logging
from .metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
)
from .timeline import (
    DEFAULT_SAMPLE_EVENTS,
    JobTimeline,
    NodeTimeline,
    NodeTimelineSampler,
    TimelineAlert,
    TimelineConfig,
)
from .tracer import (
    NULL_SPAN,
    NullSpan,
    Span,
    Tracer,
    enabled,
    install,
    marker,
    recording,
    span,
    uninstall,
)

__all__ = [
    "tracer",
    "metrics",
    "logging",
    "timeline",
    "report",
    "TimelineConfig",
    "TimelineAlert",
    "NodeTimelineSampler",
    "NodeTimeline",
    "JobTimeline",
    "DEFAULT_SAMPLE_EVENTS",
    "Tracer",
    "Span",
    "NullSpan",
    "NULL_SPAN",
    "span",
    "marker",
    "enabled",
    "install",
    "uninstall",
    "recording",
    "MetricsRegistry",
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "counter",
    "gauge",
    "histogram",
    "get_logger",
    "setup_logging",
    "kv",
]
