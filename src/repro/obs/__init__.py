"""Observability for the simulator itself: spans, metrics, logging.

The paper instruments Blue Gene/P; this package instruments the
*reproduction* — a LIKWID-style span tracer with wall-time and
simulated-cycle attributes, a metrics registry for the model's internal
hot paths, and structured logging.  Everything defaults to off at
near-zero cost; the CLI's ``--trace``/``--profile``/``--json`` flags
(and :func:`repro.obs.tracer.install`) switch recording on.

Artifacts a traced run exports:

* ``trace.json`` — Chrome/Perfetto-loadable span timeline;
* ``spans.jsonl`` — one span per line for ad-hoc analysis;
* ``metrics.json`` — the counters/gauges/histograms snapshot.
"""

from . import logging, metrics, tracer
from .logging import get_logger, kv
from .logging import setup as setup_logging
from .metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
)
from .tracer import (
    NULL_SPAN,
    NullSpan,
    Span,
    Tracer,
    enabled,
    install,
    marker,
    recording,
    span,
    uninstall,
)

__all__ = [
    "tracer",
    "metrics",
    "logging",
    "Tracer",
    "Span",
    "NullSpan",
    "NULL_SPAN",
    "span",
    "marker",
    "enabled",
    "install",
    "uninstall",
    "recording",
    "MetricsRegistry",
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "counter",
    "gauge",
    "histogram",
    "get_logger",
    "setup_logging",
    "kv",
]
