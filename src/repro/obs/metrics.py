"""A metrics registry for the simulator's own internals.

The UPC unit counts the *modelled machine*; this registry counts the
*model* — how many cache-model evaluations, DDR contention resolutions,
network phase charges and BSP iterations a run performed.  That is the
raw material for finding and verifying hot-path optimisations (you
cannot speed up what you cannot see).

Three instrument kinds, deliberately minimal:

* :class:`Counter` — monotonically increasing count (``inc``);
* :class:`Gauge` — last-written value (``set``);
* :class:`Histogram` — streaming count/total/min/max plus p50/p90/p99
  tails over observations (no buckets: a bounded reservoir of raw
  samples keeps the hot path at one compare + three adds + one append,
  and nearest-rank percentiles are computed only at snapshot time).

Hot modules bind their instruments once at import time
(``_EVALS = counter("mem.loop_evals")``); incrementing is then a method
call and an integer add.  :func:`reset` zeroes instruments **in
place**, so those module-level bindings survive.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def _reset(self) -> None:
        self.value = 0


class Gauge:
    """A last-value-wins instrument."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def _reset(self) -> None:
        self.value = 0.0


class Histogram:
    """Streaming summary statistics of observed values.

    Percentiles come from a deterministic decimating reservoir: raw
    samples accumulate until :data:`MAX_SAMPLES`, then every other
    retained sample is dropped and the keep-stride doubles.  The kept
    samples stay an unbiased, evenly spaced subsample of the stream in
    arrival order, so nearest-rank percentiles over them converge on
    the stream's tails without unbounded memory.
    """

    __slots__ = ("name", "count", "total", "min", "max",
                 "_samples", "_stride")

    #: reservoir capacity before decimation halves it
    MAX_SAMPLES = 4096

    def __init__(self, name: str):
        self.name = name
        self._reset()

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if self.count % self._stride == 0:
            self._samples.append(value)
            if len(self._samples) >= self.MAX_SAMPLES:
                self._samples = self._samples[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, pct: float) -> Optional[float]:
        """Nearest-rank percentile over the retained reservoir.

        An empty reservoir has no tails to report: the query returns
        ``None`` (not a fabricated 0.0, which callers would mistake for
        a real observation) — fleet summarizers and report renderers
        show the absence explicitly.
        """
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        rank = max(1, -(-pct * len(ordered) // 100))  # ceil
        return ordered[int(min(rank, len(ordered))) - 1]

    def _reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples = []
        self._stride = 1

    def to_dict(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0, "total": 0.0, "mean": 0.0,
                    "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p90": 0.0, "p99": 0.0}
        return {"count": self.count, "total": self.total,
                "mean": self.mean, "min": self.min, "max": self.max,
                "p50": self.percentile(50), "p90": self.percentile(90),
                "p99": self.percentile(99)}


class MetricsRegistry:
    """Get-or-create registry of named instruments."""

    def __init__(self):
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        inst = self.counters.get(name)
        if inst is None:
            inst = self.counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self.gauges.get(name)
        if inst is None:
            inst = self.gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self.histograms.get(name)
        if inst is None:
            inst = self.histograms[name] = Histogram(name)
        return inst

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero every instrument in place (bindings stay valid)."""
        for group in (self.counters, self.gauges, self.histograms):
            for inst in group.values():
                inst._reset()

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """All current values as a plain JSON-ready dict."""
        return {
            "counters": {n: c.value for n, c in
                         sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {n: h.to_dict() for n, h in
                           sorted(self.histograms.items())},
        }

    def export_json(self, path: str) -> str:
        # write-then-rename: the service re-exports this file on every
        # request, so concurrent readers must never see a torn snapshot
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            json.dump(self.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
        return path

    # ------------------------------------------------------------------
    # cross-process shipping (pool workers -> parent)
    # ------------------------------------------------------------------
    def dump_state(self) -> Dict[str, object]:
        """Full instrument state as a picklable dict.

        Unlike :meth:`snapshot` this includes histogram reservoirs, so
        a pool worker can ship its per-task instrument state back to
        the parent for :meth:`merge_state` without losing tails.
        """
        return {
            "counters": {n: c.value for n, c in self.counters.items()
                         if c.value},
            "gauges": {n: g.value for n, g in self.gauges.items()
                       if g.value},
            "histograms": {
                n: {"count": h.count, "total": h.total,
                    "min": h.min, "max": h.max,
                    "samples": list(h._samples), "stride": h._stride}
                for n, h in self.histograms.items() if h.count},
        }

    def merge_state(self, state: Dict[str, object]) -> None:
        """Merge a worker's :meth:`dump_state` into this registry.

        Counters add, gauges take the shipped value (last-write-wins,
        matching their in-process semantics), histograms combine their
        summary stats and pool their reservoirs (decimating back under
        the cap if the union overflows).
        """
        for name, value in state.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in state.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, shipped in state.get("histograms", {}).items():
            hist = self.histogram(name)
            hist.count += shipped["count"]
            hist.total += shipped["total"]
            if shipped["min"] < hist.min:
                hist.min = shipped["min"]
            if shipped["max"] > hist.max:
                hist.max = shipped["max"]
            hist._samples = hist._samples + list(shipped["samples"])
            hist._stride = max(hist._stride, int(shipped["stride"]))
            while len(hist._samples) >= Histogram.MAX_SAMPLES:
                hist._samples = hist._samples[::2]
                hist._stride *= 2


#: The process-global registry the instrumented modules bind against.
REGISTRY = MetricsRegistry()


def counter(name: str) -> Counter:
    """Get or create a counter on the global registry."""
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    """Get or create a gauge on the global registry."""
    return REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    """Get or create a histogram on the global registry."""
    return REGISTRY.histogram(name)


def reset(registry: Optional[MetricsRegistry] = None) -> None:
    """Zero the given (default: global) registry in place."""
    (registry or REGISTRY).reset()


def snapshot() -> Dict[str, Dict[str, object]]:
    """Snapshot of the global registry."""
    return REGISTRY.snapshot()


def dump_state() -> Dict[str, object]:
    """Picklable full state of the global registry (for pool workers)."""
    return REGISTRY.dump_state()


def merge_state(state: Dict[str, object]) -> None:
    """Merge a shipped worker state into the global registry."""
    REGISTRY.merge_state(state)
