"""A metrics registry for the simulator's own internals.

The UPC unit counts the *modelled machine*; this registry counts the
*model* — how many cache-model evaluations, DDR contention resolutions,
network phase charges and BSP iterations a run performed.  That is the
raw material for finding and verifying hot-path optimisations (you
cannot speed up what you cannot see).

Three instrument kinds, deliberately minimal:

* :class:`Counter` — monotonically increasing count (``inc``);
* :class:`Gauge` — last-written value (``set``);
* :class:`Histogram` — streaming count/total/min/max over observations
  (no buckets: the consumers here want means and extremes, and a
  bucketless histogram is one compare + three adds on the hot path).

Hot modules bind their instruments once at import time
(``_EVALS = counter("mem.loop_evals")``); incrementing is then a method
call and an integer add.  :func:`reset` zeroes instruments **in
place**, so those module-level bindings survive.
"""

from __future__ import annotations

import json
from typing import Dict, Optional


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def _reset(self) -> None:
        self.value = 0


class Gauge:
    """A last-value-wins instrument."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def _reset(self) -> None:
        self.value = 0.0


class Histogram:
    """Streaming summary statistics of observed values."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self._reset()

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def _reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def to_dict(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0, "total": 0.0, "mean": 0.0,
                    "min": 0.0, "max": 0.0}
        return {"count": self.count, "total": self.total,
                "mean": self.mean, "min": self.min, "max": self.max}


class MetricsRegistry:
    """Get-or-create registry of named instruments."""

    def __init__(self):
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        inst = self.counters.get(name)
        if inst is None:
            inst = self.counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self.gauges.get(name)
        if inst is None:
            inst = self.gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self.histograms.get(name)
        if inst is None:
            inst = self.histograms[name] = Histogram(name)
        return inst

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero every instrument in place (bindings stay valid)."""
        for group in (self.counters, self.gauges, self.histograms):
            for inst in group.values():
                inst._reset()

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """All current values as a plain JSON-ready dict."""
        return {
            "counters": {n: c.value for n, c in
                         sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {n: h.to_dict() for n, h in
                           sorted(self.histograms.items())},
        }

    def export_json(self, path: str) -> str:
        with open(path, "w") as fh:
            json.dump(self.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path


#: The process-global registry the instrumented modules bind against.
REGISTRY = MetricsRegistry()


def counter(name: str) -> Counter:
    """Get or create a counter on the global registry."""
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    """Get or create a gauge on the global registry."""
    return REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    """Get or create a histogram on the global registry."""
    return REGISTRY.histogram(name)


def reset(registry: Optional[MetricsRegistry] = None) -> None:
    """Zero the given (default: global) registry in place."""
    (registry or REGISTRY).reset()


def snapshot() -> Dict[str, Dict[str, object]]:
    """Snapshot of the global registry."""
    return REGISTRY.snapshot()
