"""Job-level telemetry: machine-wide counter sampling and timelines.

The paper's headline use-case for the UPC unit is *online* analysis — "a
single monitoring thread executing as part of a system service" watching
counters while a job runs (Section I).  :mod:`repro.core.monitor` gives
us that thread for one node; this module scales it to the whole machine,
in the style of ScALPEL / SUPReMM / LIKWID job telemetry:

* during :meth:`repro.runtime.Job.run` a
  :class:`~repro.core.monitor.CounterMonitor` is attached to every
  monitored node, sampling a configurable event set every
  ``sample_every`` simulated cycles;
* the memoized engine samples **one representative per node-equivalence
  class** and replicates the compute-phase series to the class members
  (via :meth:`CounterMonitor.fork`), exactly as counter deltas are
  replicated — per-node series are byte-identical to the legacy
  ``memoize=False`` engine;
* the per-node series roll up into a :class:`JobTimeline`: per-event
  min/mean/max/percentile bands across nodes, load-imbalance statistics,
  phase-change anomaly flags, threshold-interrupt alert streams, and
  derived-metric timelines (MFLOPS, L3<->DDR bandwidth, FP instruction
  mix over time) computed by reusing :mod:`repro.core.metrics` on
  per-sample deltas.

Within one BSP phase the simulation produces its events in a single
lump, so the sampler distributes each phase's event total uniformly
across the sample boundaries that fall inside the phase (cumulative
integer rounding: per-phase totals are preserved exactly).  That models
the paper's bulk-synchronous workloads — event rates are constant inside
a phase and step at phase boundaries, which is precisely the signal the
online-analysis use-cases consume.

Artifacts (exported by the CLI when ``--sample-every`` is given):

* ``timeline.jsonl`` — per-sample/per-node records, one JSON per line;
* Perfetto counter tracks (``"ph": "C"``) merged into ``trace.json`` so
  sampled events render as graphs under the span timeline;
* ``report.md`` / ``report.json`` via ``python -m repro report``
  (:mod:`repro.obs.report`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.counters import UPCUnit
from ..core.events import EVENTS_BY_NAME, event_by_name
from ..core.monitor import CounterMonitor


def _default_sample_events() -> Tuple[str, ...]:
    """The default sampled event set, spanning counter modes 0 and 2.

    This is the event list of the built-in ``BGP_BASE`` performance
    group: mode 0 (even node cards) carries the per-core cycle,
    instruction, FPU and L1-miss counters every derived metric needs;
    mode 2 (odd cards) the L3/DDR counters behind the bandwidth
    timeline.  Each node samples only the subset belonging to its own
    counter mode — all a real monitoring thread could observe.
    """
    from ..groups import get_group
    return tuple(get_group("BGP_BASE").events)


DEFAULT_SAMPLE_EVENTS: Tuple[str, ...] = _default_sample_events()


@dataclass(frozen=True)
class TimelineConfig:
    """What to sample, how often, and what to alert on."""

    #: sampling period in simulated cycles
    sample_every: int
    #: event names to watch (filtered per node to its counter mode)
    events: Tuple[str, ...] = DEFAULT_SAMPLE_EVENTS
    #: event name -> absolute counter threshold; crossing one raises a
    #: thresholding interrupt recorded in the job's alert stream
    thresholds: Dict[str, int] = field(default_factory=dict)
    #: cross-node band percentiles exported per sample
    percentiles: Tuple[int, int] = (10, 90)
    #: rate-jump factor fed to the per-node phase-change detector
    anomaly_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.sample_every <= 0:
            raise ValueError(
                f"sample_every must be positive, got {self.sample_every}")
        for name in self.events:
            if name not in EVENTS_BY_NAME:
                raise ValueError(f"unknown event {name!r}")

    def with_period(self, sample_every: int) -> "TimelineConfig":
        """This configuration at a different sampling period."""
        return replace(self, sample_every=sample_every)

    def events_in_mode(self, mode: int) -> List[str]:
        """The sampled events a node in counter ``mode`` can observe."""
        return [name for name in self.events
                if EVENTS_BY_NAME[name].mode == mode]


@dataclass(frozen=True)
class TimelineAlert:
    """One thresholding interrupt observed by the sampling pipeline."""

    node_id: int
    cycle: int
    event: str
    threshold: int
    value: int

    def to_dict(self) -> Dict[str, Any]:
        return {"node": self.node_id, "cycle": self.cycle,
                "event": self.event, "threshold": self.threshold,
                "value": self.value}


class NodeTimelineSampler:
    """The monitoring thread of one node during one job run.

    Owns a shadow :class:`UPCUnit` in the node's counter mode and a
    :class:`CounterMonitor` over it.  The job engine *feeds* it: each
    BSP phase hands over its named event totals and its cycle span, and
    the sampler distributes the events across the sample boundaries
    inside the span (see the module docstring).  The shadow unit keeps
    the sampling pipeline entirely out of the real dumps' way — the
    node's own UPC unit sees exactly the pulses it always saw.
    """

    def __init__(self, node_id: int, mode: int, config: TimelineConfig):
        names = config.events_in_mode(mode)
        if not names:
            raise ValueError(
                f"no sampled events belong to counter mode {mode}")
        self.node_id = node_id
        self.mode = mode
        self.config = config
        self.upc = UPCUnit(node_id=node_id)
        self.upc.mode = mode
        self.alerts: List[TimelineAlert] = []
        for name in names:
            threshold = config.thresholds.get(name)
            if threshold:
                self.upc.configure(event_by_name(name).counter,
                                   interrupt_enable=True,
                                   threshold=threshold)
        self._cycle_hint = 0
        self.upc.on_interrupt(lambda irq: self.alerts.append(
            TimelineAlert(node_id=self.node_id, cycle=self._cycle_hint,
                          event=irq.event_name, threshold=irq.threshold,
                          value=irq.value)))
        self.monitor = CounterMonitor(self.upc, names,
                                      period_cycles=config.sample_every)
        #: series sampled before this sampler was branched (shared, not
        #: copied, across an equivalence class — replication for free)
        self._base_series: Dict[str, List[Tuple[int, int]]] = {}
        self._base_alerts: List[TimelineAlert] = []
        self.phases: List[Tuple[str, int, int]] = []

    # ------------------------------------------------------------------
    def feed(self, label: str, events: Dict[str, int],
             cycles: float) -> None:
        """One BSP phase: distribute its events over its cycle span."""
        span = int(round(cycles))
        if span < 0:
            raise ValueError(f"negative phase span: {cycles}")
        monitor = self.monitor
        start = monitor.now
        end = start + span
        totals = {name: int(count) for name, count in events.items()
                  if count > 0 and name in monitor.series}
        pulsed = dict.fromkeys(totals, 0)
        if span > 0 and totals:
            period = monitor.period_cycles
            boundary = (start // period + 1) * period
            while boundary <= end:
                self._cycle_hint = boundary
                frac = (boundary - start) / span
                for name, total in totals.items():
                    target = int(total * frac)
                    share = target - pulsed[name]
                    if share > 0:
                        self.upc.pulse(name, share)
                        pulsed[name] = target
                monitor.advance(boundary - monitor.now)
                boundary += period
        # the tail segment: per-phase totals are preserved exactly
        self._cycle_hint = end
        for name, total in totals.items():
            rest = total - pulsed[name]
            if rest > 0:
                self.upc.pulse(name, rest)
        if end > monitor.now:
            monitor.advance(end - monitor.now)
        self.phases.append((label, start, end))

    # ------------------------------------------------------------------
    def branch(self, node_id: int) -> "NodeTimelineSampler":
        """Replicate this sampler's series to an equivalence-class member.

        The branch starts where this sampler stands: the samples taken
        so far become the member's (shared, read-only) base series, the
        monitor is forked onto a fresh shadow unit with the same counter
        values, and alerts raised so far are re-labelled with the
        member's node id.  Feeding both the original and the branch the
        same subsequent phases yields byte-identical per-node series.
        """
        twin = NodeTimelineSampler.__new__(NodeTimelineSampler)
        twin.node_id = node_id
        twin.mode = self.mode
        twin.config = self.config
        twin.upc = UPCUnit(node_id=node_id)
        twin.upc.mode = self.mode
        twin.alerts = []
        twin._cycle_hint = self._cycle_hint
        for name in self.monitor.series:
            ev = event_by_name(name)
            twin.upc.registers.set_counter(ev.counter,
                                           self.upc.read(ev.counter))
            threshold = self.config.thresholds.get(name)
            if threshold:
                twin.upc.configure(ev.counter, interrupt_enable=True,
                                   threshold=threshold)
        twin.upc.on_interrupt(lambda irq: twin.alerts.append(
            TimelineAlert(node_id=twin.node_id, cycle=twin._cycle_hint,
                          event=irq.event_name, threshold=irq.threshold,
                          value=irq.value)))
        twin.monitor = self.monitor.fork(twin.upc)
        twin._base_series = {
            name: self._base_series.get(name, [])
            + [(s.cycle, s.delta) for s in series.samples]
            for name, series in self.monitor.series.items()}
        twin._base_alerts = (self._base_alerts
                             + [replace(a, node_id=node_id)
                                for a in self.alerts])
        twin.phases = list(self.phases)
        return twin

    # ------------------------------------------------------------------
    def finish(self) -> "NodeTimeline":
        """Flush the monitor and freeze this node's timeline."""
        self.monitor.flush()
        samples = {
            name: self._base_series.get(name, [])
            + [(s.cycle, s.delta) for s in series.samples]
            for name, series in self.monitor.series.items()}
        return NodeTimeline(
            node_id=self.node_id,
            mode=self.mode,
            samples=samples,
            alerts=self._base_alerts + self.alerts,
            phases=list(self.phases),
            anomaly_factor=self.config.anomaly_factor,
        )


def detect_rate_jumps(samples: Sequence[Tuple[int, int]],
                      factor: float) -> List[int]:
    """Cycles where the event rate jumped/dropped by >= ``factor``.

    The same detector as :meth:`CounterMonitor.phase_changes`, operating
    on frozen ``(cycle, delta)`` series (zero-delta intervals are idle
    gaps, not phases).
    """
    if factor <= 1.0:
        raise ValueError("factor must be > 1")
    active: List[Tuple[float, int]] = []
    prev_cycle = 0
    for cycle, delta in samples:
        width = cycle - prev_cycle
        rate = delta / width if width else 0.0
        if rate > 0:
            active.append((rate, cycle))
        prev_cycle = cycle
    changes = []
    for (prev, _), (cur, cycle) in zip(active, active[1:]):
        if cur / prev >= factor or prev / cur >= factor:
            changes.append(cycle)
    return changes


@dataclass
class NodeTimeline:
    """One node's frozen sampled series for one job."""

    node_id: int
    mode: int
    #: event name -> [(cycle, delta)] in cycle order
    samples: Dict[str, List[Tuple[int, int]]]
    alerts: List[TimelineAlert] = field(default_factory=list)
    phases: List[Tuple[str, int, int]] = field(default_factory=list)
    anomaly_factor: float = 4.0

    def totals(self) -> Dict[str, int]:
        return {name: sum(d for _, d in series)
                for name, series in self.samples.items()}

    def phase_changes(self) -> Dict[str, List[int]]:
        """Per-event anomaly flags: cycles where the rate jumped."""
        out: Dict[str, List[int]] = {}
        for name, series in self.samples.items():
            changes = detect_rate_jumps(series, self.anomaly_factor)
            if changes:
                out[name] = changes
        return out


class JobTimeline:
    """The job-level rollup of every node's sampled series."""

    def __init__(self, program: str, flags: str, mode_name: str,
                 num_nodes: int, num_ranks: int, sample_every: int,
                 elapsed_cycles: float,
                 nodes: Dict[int, NodeTimeline],
                 percentiles: Tuple[int, int] = (10, 90),
                 wall_start_us: Optional[float] = None,
                 wall_dur_us: Optional[float] = None,
                 label: Optional[str] = None):
        self.program = program
        self.flags = flags
        self.mode_name = mode_name
        self.num_nodes = num_nodes
        self.num_ranks = num_ranks
        self.sample_every = sample_every
        self.elapsed_cycles = elapsed_cycles
        self.nodes = nodes
        self.percentiles = percentiles
        self.wall_start_us = wall_start_us
        self.wall_dur_us = wall_dur_us
        self.label = label or f"{program} {flags}"

    # ------------------------------------------------------------------
    # cross-node aggregation
    # ------------------------------------------------------------------
    def sample_grid(self) -> List[int]:
        """The union of all nodes' sample cycles, sorted."""
        grid = set()
        for node in self.nodes.values():
            for series in node.samples.values():
                grid.update(cycle for cycle, _ in series)
        return sorted(grid)

    def bands(self) -> Dict[str, List[Dict[str, float]]]:
        """Per-event cross-node bands: one record per sample cycle.

        Each record carries ``cycle, min, mean, max, p<lo>, p<hi>,
        total`` over the nodes that monitored the event and have a
        sample at that cycle.
        """
        lo, hi = self.percentiles
        per_event: Dict[str, Dict[int, List[int]]] = {}
        for node in self.nodes.values():
            for name, series in node.samples.items():
                cells = per_event.setdefault(name, {})
                for cycle, delta in series:
                    cells.setdefault(cycle, []).append(delta)
        out: Dict[str, List[Dict[str, float]]] = {}
        for name, cells in per_event.items():
            rows = []
            for cycle in sorted(cells):
                values = sorted(cells[cycle])
                rows.append({
                    "cycle": cycle,
                    "min": values[0],
                    "mean": sum(values) / len(values),
                    "max": values[-1],
                    f"p{lo}": _nearest_rank(values, lo),
                    f"p{hi}": _nearest_rank(values, hi),
                    "total": sum(values),
                    "nodes": len(values),
                })
            out[name] = rows
        return out

    def merged_deltas(self) -> List[Tuple[int, Dict[str, int]]]:
        """Per sample cycle, the machine-wide named event deltas."""
        merged: Dict[int, Dict[str, int]] = {}
        for node in self.nodes.values():
            for name, series in node.samples.items():
                for cycle, delta in series:
                    cell = merged.setdefault(cycle, {})
                    cell[name] = cell.get(name, 0) + delta
        return [(cycle, merged[cycle]) for cycle in sorted(merged)]

    def derived_timeline(self) -> List[Dict[str, float]]:
        """The active group's timeline metrics per sample interval.

        Evaluates the timeline-flagged formulas of the active
        performance group (:func:`repro.groups.get_active_group`;
        ``mflops``/``ddr_bytes_per_sec``/``simd_fraction`` under the
        default ``BGP_BASE``) on the per-sample machine-wide deltas.
        Rates use the interval width as the cycle base (the sampled
        CYCLES deltas only see one interval's worth per core, which is
        not the interval width under SMP modes).
        """
        from ..groups import get_active_group
        group = get_active_group()
        metrics = group.timeline_metrics()
        rows: List[Dict[str, float]] = []
        prev_cycle = 0
        for cycle, named in self.merged_deltas():
            width = cycle - prev_cycle
            prev_cycle = cycle
            if width <= 0:
                continue
            row: Dict[str, float] = {"cycle": cycle}
            row.update(group.evaluate(named, params={"cycles": width},
                                      only=metrics))
            rows.append(row)
        return rows

    def imbalance(self) -> Dict[str, Dict[str, float]]:
        """Cross-node load imbalance per event, over whole-run totals.

        ``imbalance = (max - min) / mean`` — 0 for perfectly symmetric
        SPMD placement, > 0 where some nodes did more of the work.
        """
        per_event: Dict[str, List[int]] = {}
        for node in self.nodes.values():
            for name, total in node.totals().items():
                per_event.setdefault(name, []).append(total)
        out: Dict[str, Dict[str, float]] = {}
        for name, values in per_event.items():
            mean = sum(values) / len(values)
            out[name] = {
                "min": float(min(values)),
                "mean": mean,
                "max": float(max(values)),
                "imbalance": ((max(values) - min(values)) / mean
                              if mean else 0.0),
                "nodes": float(len(values)),
            }
        return out

    def top_imbalanced(self, n: int = 5) -> List[Tuple[str, Dict[str, float]]]:
        """The ``n`` most imbalanced events with nonzero activity."""
        stats = [(name, s) for name, s in self.imbalance().items()
                 if s["mean"] > 0]
        stats.sort(key=lambda item: -item[1]["imbalance"])
        return stats[:n]

    def alerts(self) -> List[TimelineAlert]:
        """Every node's thresholding interrupts, in cycle order."""
        out = [a for node in self.nodes.values() for a in node.alerts]
        out.sort(key=lambda a: (a.cycle, a.node_id))
        return out

    def anomalies(self) -> Dict[int, Dict[str, List[int]]]:
        """Per-node phase-change/anomaly flags (empty nodes omitted)."""
        out = {}
        for node_id, node in sorted(self.nodes.items()):
            changes = node.phase_changes()
            if changes:
                out[node_id] = changes
        return out

    # ------------------------------------------------------------------
    # exports
    # ------------------------------------------------------------------
    def to_records(self) -> List[Dict[str, Any]]:
        """The timeline as flat JSONL-ready records.

        One ``job`` record, one ``sample`` record per grid cycle (bands
        + derived metrics), one ``node`` record per node (totals,
        anomaly flags), and one ``alert`` record per interrupt.
        """
        records: List[Dict[str, Any]] = [{
            "kind": "job",
            "job": self.label,
            "program": self.program,
            "flags": self.flags,
            "mode": self.mode_name,
            "nodes": self.num_nodes,
            "sampled_nodes": len(self.nodes),
            "ranks": self.num_ranks,
            "sample_every": self.sample_every,
            "elapsed_cycles": self.elapsed_cycles,
            "samples": len(self.sample_grid()),
        }]
        bands = self.bands()
        derived = {row["cycle"]: row for row in self.derived_timeline()}
        by_cycle: Dict[int, Dict[str, Dict[str, float]]] = {}
        for name, rows in bands.items():
            for row in rows:
                if row["total"]:
                    by_cycle.setdefault(row["cycle"], {})[name] = {
                        k: v for k, v in row.items() if k != "cycle"}
        for cycle in sorted(by_cycle):
            rec: Dict[str, Any] = {"kind": "sample", "job": self.label,
                                   "cycle": cycle,
                                   "events": by_cycle[cycle]}
            drow = derived.get(cycle)
            if drow:
                rec["derived"] = {k: v for k, v in drow.items()
                                  if k != "cycle"}
            records.append(rec)
        for node_id, node in sorted(self.nodes.items()):
            records.append({
                "kind": "node",
                "job": self.label,
                "node": node_id,
                "counter_mode": node.mode,
                "totals": {k: v for k, v in node.totals().items() if v},
                "phase_changes": node.phase_changes(),
                "phases": [{"label": l, "start": s, "end": e}
                           for l, s, e in node.phases],
            })
        for alert in self.alerts():
            rec = alert.to_dict()
            rec.update(kind="alert", job=self.label)
            records.append(rec)
        return records

    def perfetto_counter_events(self, pid: int = 0) -> List[Dict[str, Any]]:
        """Chrome/Perfetto counter-track (``"ph": "C"``) events.

        One track per derived metric and one per sampled event (the
        cross-node mean), time-mapped onto the job span's wall-clock
        window when the run was traced so the graphs line up under the
        span timeline; untraced timelines fall back to 1 us per 1000
        simulated cycles.
        """
        grid = self.sample_grid()
        if not grid:
            return []
        span_cycles = max(grid[-1], 1)

        def ts(cycle: int) -> float:
            if (self.wall_start_us is not None
                    and self.wall_dur_us is not None):
                return round(self.wall_start_us
                             + self.wall_dur_us * cycle / span_cycles, 3)
            return round(cycle / 1000.0, 3)

        from ..groups import get_active_group
        track_metrics = get_active_group().track_metrics()
        events: List[Dict[str, Any]] = []
        for row in self.derived_timeline():
            cycle = int(row["cycle"])
            for metric in track_metrics:
                events.append({
                    "name": f"{self.label} {metric}",
                    "cat": "timeline", "ph": "C",
                    "ts": ts(cycle), "pid": pid,
                    "args": {"value": round(row[metric], 3)},
                })
        for name, rows in self.bands().items():
            if not any(row["total"] for row in rows):
                continue
            for row in rows:
                events.append({
                    "name": f"{self.label} {name}",
                    "cat": "timeline", "ph": "C",
                    "ts": ts(int(row["cycle"])), "pid": pid,
                    "args": {"mean": round(row["mean"], 3),
                             "max": row["max"]},
                })
        return events


def _nearest_rank(sorted_values: Sequence[float], pct: int) -> float:
    """Nearest-rank percentile of an ascending sequence."""
    if not sorted_values:
        return 0.0
    rank = max(1, -(-pct * len(sorted_values) // 100))  # ceil
    return sorted_values[min(rank, len(sorted_values)) - 1]


# ---------------------------------------------------------------------------
# the process-global sampling slot (mirrors repro.obs.tracer's design)
# ---------------------------------------------------------------------------
_config: Optional[TimelineConfig] = None
#: timelines recorded while sampling was installed, in run order
_recorded: List[JobTimeline] = []


def install_sampling(config: "TimelineConfig | int") -> TimelineConfig:
    """Install a sampling configuration as the process global.

    Accepts a full :class:`TimelineConfig` or a bare period in cycles
    (the ``--sample-every N`` CLI flag).  Jobs run while a config is
    installed sample their nodes and record a :class:`JobTimeline`.
    """
    global _config
    if isinstance(config, int):
        config = TimelineConfig(sample_every=config)
    _config = config
    return config


def uninstall_sampling() -> List[JobTimeline]:
    """Remove the installed config; return (and keep) the timelines."""
    global _config
    _config = None
    return _recorded


def get_config() -> Optional[TimelineConfig]:
    """The installed sampling configuration, or None."""
    return _config


def resolve_config(sample_every: Optional[int]) -> Optional[TimelineConfig]:
    """The effective config for one job.

    An explicit per-job ``sample_every`` overrides the installed
    config's period (keeping its event set and thresholds) or, with
    nothing installed, turns on sampling with the defaults.  ``None``
    defers to the installed config (usually: sampling off).
    """
    if sample_every is None:
        return _config
    if _config is not None:
        return _config.with_period(sample_every)
    return TimelineConfig(sample_every=sample_every)


def record(timeline: JobTimeline) -> JobTimeline:
    """Register one job's finished timeline with the global recorder."""
    timeline.label = (f"{timeline.program} {timeline.flags} "
                      f"#{len(_recorded)}")
    _recorded.append(timeline)
    return timeline


def recorded() -> List[JobTimeline]:
    """Every timeline recorded since the last :func:`clear_recorded`."""
    return list(_recorded)


def clear_recorded() -> None:
    """Drop recorded timelines (tests and fresh CLI runs use this)."""
    del _recorded[:]


def export_jsonl(path: str,
                 timelines: Optional[Sequence[JobTimeline]] = None) -> str:
    """Write ``timeline.jsonl``: every timeline's records, one per line."""
    timelines = _recorded if timelines is None else timelines
    with open(path, "w") as fh:
        for timeline in timelines:
            for rec in timeline.to_records():
                fh.write(json.dumps(rec) + "\n")
    return path


def perfetto_events(timelines: Optional[Sequence[JobTimeline]] = None
                    ) -> List[Dict[str, Any]]:
    """Counter-track events for every recorded timeline."""
    timelines = _recorded if timelines is None else timelines
    events: List[Dict[str, Any]] = []
    for timeline in timelines:
        events.extend(timeline.perfetto_counter_events())
    return events
