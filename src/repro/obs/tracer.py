"""Span tracing for the simulator itself.

The paper's contribution is instrumentation *of* Blue Gene/P; this
module instruments the *simulator*, in the style of LIKWID's marker API
(Treibig et al.): named regions opened and closed around interesting
work, recorded with both wall-clock time (what the simulator costs us)
and simulated cycles (what the modelled machine spent inside the
region).

Design constraints, in order:

1. **Disabled tracing costs ~nothing.**  The process-global tracer slot
   defaults to ``None``; :func:`span` then returns a shared, stateless
   :class:`NullSpan` whose every method is a no-op.  Hot paths may
   additionally guard attribute construction behind :func:`enabled`.
2. **No nesting discipline required.**  Spans usually close LIFO (the
   ``with`` statement guarantees it), but marker spans opened by
   ``BGP_Start`` may interleave across set ids; ``end()`` tolerates
   out-of-order closes.
3. **Exportable artifacts.**  A finished trace serialises to JSONL (one
   span per line, trivially greppable) and to the Chrome/Perfetto
   ``trace.json`` event format, loadable in ``chrome://tracing`` or
   https://ui.perfetto.dev with zero extra tooling.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Any, Dict, List, Optional


class NullSpan:
    """The do-nothing span returned while tracing is disabled.

    A single shared instance is handed to every caller; it carries no
    state, so reuse is safe even across interleaved regions.
    """

    __slots__ = ()

    def set(self, key: str, value: Any) -> "NullSpan":
        return self

    def end(self) -> None:
        return None

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


#: The shared no-op span (identity-comparable in tests).
NULL_SPAN = NullSpan()


class Span:
    """One live (or finished) traced region."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "depth",
                 "start_us", "dur_us", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id: Optional[int], depth: int, start_us: float,
                 attrs: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.start_us = start_us
        self.dur_us: Optional[float] = None  # None while open
        self.attrs = attrs

    def set(self, key: str, value: Any) -> "Span":
        """Attach/overwrite one attribute (chainable)."""
        self.attrs[key] = value
        return self

    def end(self) -> None:
        """Close the span; idempotent."""
        if self.dur_us is None:
            self._tracer._end(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc) -> bool:
        self.end()
        return False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            "ts_us": round(self.start_us, 3),
            "dur_us": round(self.dur_us, 3) if self.dur_us is not None
                      else None,
            "attrs": self.attrs,
        }


class Tracer:
    """Records spans against a per-tracer wall-clock epoch."""

    def __init__(self):
        self._epoch = time.perf_counter()
        self._next_id = 1
        self._open: List[Span] = []
        #: finished spans, in close order
        self.spans: List[Span] = []

    # ------------------------------------------------------------------
    def _now_us(self) -> float:
        return (time.perf_counter() - self._epoch) * 1e6

    def _make(self, name: str, attrs: Dict[str, Any]) -> Span:
        parent = self._open[-1] if self._open else None
        span = Span(self, name,
                    span_id=self._next_id,
                    parent_id=parent.span_id if parent else None,
                    depth=parent.depth + 1 if parent else 0,
                    start_us=self._now_us(),
                    attrs=attrs)
        self._next_id += 1
        return span

    def begin(self, name: str, **attrs: Any) -> Span:
        """Open a span as a child of the innermost open span."""
        span = self._make(name, attrs)
        self._open.append(span)
        return span

    def marker(self, name: str, **attrs: Any) -> Span:
        """Open a *marker* span: recorded, but never anyone's parent.

        LIKWID-style region markers (``BGP_Start``/``BGP_Stop``) stay
        open across whole measured regions and interleave across set
        ids; keeping them off the parent stack stops them from
        swallowing the structural job/phase hierarchy.
        """
        return self._make(name, attrs)

    def _end(self, span: Span) -> None:
        span.dur_us = self._now_us() - span.start_us
        # LIFO is the overwhelmingly common case; interleaved marker
        # spans (BGP_Start set interleaving) take the slow remove
        if self._open and self._open[-1] is span:
            self._open.pop()
        elif span in self._open:
            self._open.remove(span)
        self.spans.append(span)

    def close_open_spans(self) -> int:
        """Force-close anything still open (end of run); returns count."""
        n = 0
        while self._open:
            self._open[-1].end()
            n += 1
        return n

    def absorb(self, span_dicts: List[Dict[str, Any]],
               worker: Optional[str] = None) -> int:
        """Graft spans shipped from a pool worker into this trace.

        Workers record against their own epoch, so the shipped spans
        are time-shifted to *end* at this tracer's current moment (the
        instant the worker's result arrived).  Ids are remapped to stay
        unique; internal parent links are preserved; shipped roots are
        parented under the innermost open span here, which is exactly
        the ``parallel.map`` span awaiting the result.  Returns the
        number of spans absorbed.
        """
        if not span_dicts:
            return 0
        parent = self._open[-1] if self._open else None
        latest_end = max((d["ts_us"] + (d["dur_us"] or 0.0))
                         for d in span_dicts)
        offset = self._now_us() - latest_end
        base_depth = parent.depth + 1 if parent else 0
        id_map: Dict[int, int] = {}
        for d in span_dicts:
            id_map[d["id"]] = self._next_id
            self._next_id += 1
        for d in span_dicts:
            attrs = dict(d.get("attrs") or {})
            if worker:
                attrs.setdefault("worker", worker)
            span = Span(self, d["name"],
                        span_id=id_map[d["id"]],
                        parent_id=(id_map.get(d["parent"],
                                              parent.span_id if parent
                                              else None)
                                   if d["parent"] is not None
                                   else (parent.span_id if parent
                                         else None)),
                        depth=base_depth + d.get("depth", 0),
                        start_us=d["ts_us"] + offset,
                        attrs=attrs)
            span.dur_us = d["dur_us"] or 0.0
            self.spans.append(span)
        return len(span_dicts)

    # ------------------------------------------------------------------
    # summaries and exporters
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Dict[str, float]]:
        """Aggregate finished spans by name.

        Returns ``{name: {count, total_us, max_us, cycles}}`` where
        ``cycles`` sums the spans' simulated-cycle attribute.
        """
        out: Dict[str, Dict[str, float]] = {}
        for span in self.spans:
            agg = out.setdefault(span.name, {
                "count": 0, "total_us": 0.0, "max_us": 0.0,
                "cycles": 0.0})
            agg["count"] += 1
            dur = span.dur_us or 0.0
            agg["total_us"] += dur
            agg["max_us"] = max(agg["max_us"], dur)
            cycles = span.attrs.get("cycles")
            if isinstance(cycles, (int, float)):
                agg["cycles"] += float(cycles)
        return out

    def export_jsonl(self, path: str) -> str:
        """One finished span per line, start-time ordered."""
        ordered = sorted(self.spans, key=lambda s: s.start_us)
        with open(path, "w") as fh:
            for span in ordered:
                fh.write(json.dumps(span.to_dict(),
                                    default=_json_scalar) + "\n")
        return path

    def export_chrome(self, path: str,
                      process_name: str = "repro simulator",
                      extra_events: Optional[List[Dict[str, Any]]] = None
                      ) -> str:
        """Chrome/Perfetto ``trace.json``: complete ('X') events.

        ``extra_events`` are appended verbatim — the timeline pipeline
        uses this to merge its counter-track (``"ph": "C"``) events so
        sampled counters render as graphs under the span rows.
        """
        events: List[Dict[str, Any]] = [{
            "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
            "args": {"name": process_name},
        }]
        for span in sorted(self.spans, key=lambda s: s.start_us):
            events.append({
                "name": span.name,
                "cat": "sim",
                "ph": "X",
                "ts": round(span.start_us, 3),
                "dur": round(span.dur_us or 0.0, 3),
                "pid": 0,
                "tid": 0,
                "args": {k: _json_scalar(v)
                         for k, v in span.attrs.items()},
            })
        if extra_events:
            events.extend(extra_events)
        with open(path, "w") as fh:
            json.dump({"traceEvents": events, "displayTimeUnit": "ms"},
                      fh)
        return path


def _json_scalar(value: Any) -> Any:
    """Coerce numpy scalars and other oddballs to JSON-safe values."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    try:  # numpy integer/float scalars expose item()
        return value.item()
    except AttributeError:
        return str(value)


# ---------------------------------------------------------------------------
# the process-global tracer slot
# ---------------------------------------------------------------------------
_tracer: Optional[Tracer] = None


def enabled() -> bool:
    """True when a recording tracer is installed."""
    return _tracer is not None


def get() -> Optional[Tracer]:
    """The installed tracer, or None."""
    return _tracer


def install(tracer: Optional[Tracer] = None) -> Tracer:
    """Install (and return) a recording tracer as the process global."""
    global _tracer
    _tracer = tracer if tracer is not None else Tracer()
    return _tracer


def uninstall() -> Optional[Tracer]:
    """Remove the installed tracer; returns it for export."""
    global _tracer
    tracer, _tracer = _tracer, None
    return tracer


def span(name: str, **attrs: Any):
    """Open a span on the installed tracer, or the shared no-op span.

    This is the one call instrumented code makes; the disabled path is
    a global load, a comparison, and a return of a shared object.
    """
    t = _tracer
    if t is None:
        return NULL_SPAN
    return t.begin(name, **attrs)


def marker(name: str, **attrs: Any):
    """Open a marker span (never a parent) on the installed tracer."""
    t = _tracer
    if t is None:
        return NULL_SPAN
    return t.marker(name, **attrs)


@contextmanager
def recording(tracer: Optional[Tracer] = None):
    """Temporarily install a tracer (tests, library embedding)."""
    t = install(tracer)
    try:
        yield t
    finally:
        uninstall()
