"""SUPReMM-style job reports from a run's exported artifacts.

``python -m repro report RUNDIR`` consumes the artifact directory a
traced + sampled run exported (``timeline.jsonl``, and optionally
``spans.jsonl`` / ``metrics.json``) and renders a per-job summary in
the spirit of SUPReMM/XDMoD job analytics: what ran, how the derived
metrics moved over time, which phases dominated, which events were
imbalanced across nodes, which anomaly flags and thresholding
interrupts fired.  Output is ``report.md`` (human) + ``report.json``
(machine) next to the inputs, or under ``--out``.

This module deliberately depends only on the artifact files — not on
live :class:`~repro.obs.timeline.JobTimeline` objects — so reports can
be produced after the fact, on another machine, or in CI.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence

from .logging import get_logger, kv

_log = get_logger("obs.report")

TIMELINE_FILE = "timeline.jsonl"
SPANS_FILE = "spans.jsonl"
METRICS_FILE = "metrics.json"
RAS_FILE = "ras.jsonl"
REQUESTS_FILE = "requests.jsonl"
REPORT_FILE = "report.json"


def _read_jsonl(path: str,
                warnings: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Parse a JSONL artifact, surviving truncated or corrupt lines.

    A run killed mid-export leaves a half-written last line (and a
    crashed exporter can leave garbage mid-file); both are skipped with
    one structured warning per file instead of poisoning the whole
    load — fleet scans must survive partial runs.
    """
    records: List[Dict[str, Any]] = []
    bad = 0
    first_bad: Optional[int] = None
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                bad += 1
                if first_bad is None:
                    first_bad = lineno
                continue
            if isinstance(record, dict):
                records.append(record)
            else:
                bad += 1
                if first_bad is None:
                    first_bad = lineno
    if bad:
        warning = {"artifact": os.path.basename(path),
                   "problem": "truncated",
                   "bad_lines": bad, "first_bad_line": first_bad,
                   "kept_records": len(records)}
        warnings.append(warning)
        _log.warning(kv("artifact.truncated", path=path, **{
            k: v for k, v in warning.items() if k != "artifact"}))
    return records


def _read_json(path: str, warnings: List[Dict[str, Any]],
               default: Any) -> Any:
    """Parse a JSON artifact; corrupt files degrade to ``default``."""
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        warnings.append({"artifact": os.path.basename(path),
                         "problem": "unreadable",
                         "error": type(exc).__name__})
        _log.warning(kv("artifact.unreadable", path=path,
                        error=type(exc).__name__))
        return default


def load_artifacts(directory: str, *,
                   require_timeline: bool = True) -> Dict[str, Any]:
    """Read whatever run artifacts ``directory`` holds.

    ``timeline.jsonl`` is required by default (a report without
    telemetry would be empty); ``spans.jsonl``, ``metrics.json``,
    ``ras.jsonl`` and ``report.json`` enrich the result when present.

    Partial runs degrade gracefully rather than raising: a truncated
    JSONL artifact keeps its parseable lines, a corrupt JSON artifact
    is treated as absent, and every such problem is recorded as a
    structured entry in the returned ``"warnings"`` list (and logged).
    With ``require_timeline=False`` even a missing ``timeline.jsonl``
    only warns — the mode fleet scans over archived corpora use.
    """
    warnings: List[Dict[str, Any]] = []
    requests: List[Dict[str, Any]] = []
    requests_path = os.path.join(directory, REQUESTS_FILE)
    if os.path.exists(requests_path):
        requests = _read_jsonl(requests_path, warnings)
    timeline_path = os.path.join(directory, TIMELINE_FILE)
    records: List[Dict[str, Any]] = []
    if os.path.exists(timeline_path):
        records = _read_jsonl(timeline_path, warnings)
    elif require_timeline and not requests:
        # a service telemetry directory (requests.jsonl only) is a
        # valid report source even without sampled job timelines
        raise FileNotFoundError(
            f"{timeline_path} not found — run with --sample-every N "
            "(and --trace/--json DIR) to export job telemetry first")
    else:
        warnings.append({"artifact": TIMELINE_FILE,
                         "problem": "missing"})
    spans: List[Dict[str, Any]] = []
    spans_path = os.path.join(directory, SPANS_FILE)
    if os.path.exists(spans_path):
        spans = _read_jsonl(spans_path, warnings)
    metrics: Dict[str, Any] = {}
    metrics_path = os.path.join(directory, METRICS_FILE)
    if os.path.exists(metrics_path):
        metrics = _read_json(metrics_path, warnings, {})
        if not isinstance(metrics, dict):
            metrics = {}
    ras: List[Dict[str, Any]] = []
    ras_path = os.path.join(directory, RAS_FILE)
    if os.path.exists(ras_path):
        ras = _read_jsonl(ras_path, warnings)
    report: Dict[str, Any] = {}
    report_path = os.path.join(directory, REPORT_FILE)
    if os.path.exists(report_path):
        report = _read_json(report_path, warnings, {})
        if not isinstance(report, dict):
            report = {}
    return {"records": records, "spans": spans, "metrics": metrics,
            "ras": ras, "requests": requests, "report": report,
            "warnings": warnings, "directory": directory}


# ---------------------------------------------------------------------------
# report assembly
# ---------------------------------------------------------------------------
def _job_section(job: Dict[str, Any],
                 records: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Summarise one job's telemetry records."""
    label = job["job"]
    samples = [r for r in records
               if r.get("kind") == "sample" and r.get("job") == label]
    nodes = [r for r in records
             if r.get("kind") == "node" and r.get("job") == label]
    alerts = [r for r in records
              if r.get("kind") == "alert" and r.get("job") == label]

    # derived-metric envelope over the sampled intervals; the metric
    # set follows whatever performance group produced the samples
    # (first-seen key order, i.e. the group's declaration order)
    derived = [r["derived"] for r in samples if "derived" in r]
    metric_names: List[str] = []
    for row in derived:
        for metric in row:
            if metric not in metric_names:
                metric_names.append(metric)
    derived_summary: Dict[str, Dict[str, float]] = {}
    for metric in metric_names:
        values = [d[metric] for d in derived if metric in d]
        if values:
            derived_summary[metric] = {
                "min": min(values),
                "mean": sum(values) / len(values),
                "max": max(values),
            }

    # per-phase table: BSP phases as the samplers recorded them
    phases: Dict[str, Dict[str, float]] = {}
    for node in nodes:
        for phase in node.get("phases", []):
            agg = phases.setdefault(phase["label"], {
                "nodes": 0, "total_cycles": 0.0, "max_cycles": 0.0})
            width = phase["end"] - phase["start"]
            agg["nodes"] += 1
            agg["total_cycles"] += width
            agg["max_cycles"] = max(agg["max_cycles"], width)
    phase_rows = []
    for name, agg in phases.items():
        mean = agg["total_cycles"] / agg["nodes"] if agg["nodes"] else 0.0
        phase_rows.append({
            "phase": name,
            "nodes": int(agg["nodes"]),
            "mean_cycles": mean,
            "max_cycles": agg["max_cycles"],
            "share": (mean / job["elapsed_cycles"]
                      if job.get("elapsed_cycles") else 0.0),
        })
    phase_rows.sort(key=lambda row: -row["mean_cycles"])

    # cross-node imbalance over whole-run event totals
    per_event: Dict[str, List[int]] = {}
    for node in nodes:
        for name, total in node.get("totals", {}).items():
            per_event.setdefault(name, []).append(total)
    imbalance = []
    for name, values in per_event.items():
        mean = sum(values) / len(values)
        if mean <= 0 or len(values) < 2:
            continue
        imbalance.append({
            "event": name,
            "nodes": len(values),
            "min": min(values),
            "mean": mean,
            "max": max(values),
            "imbalance": (max(values) - min(values)) / mean,
        })
    imbalance.sort(key=lambda row: -row["imbalance"])

    anomalies = []
    for node in nodes:
        for event, cycles in node.get("phase_changes", {}).items():
            anomalies.append({"node": node["node"], "event": event,
                              "cycles": cycles})

    return {
        "job": label,
        "program": job.get("program"),
        "flags": job.get("flags"),
        "mode": job.get("mode"),
        "nodes": job.get("nodes"),
        "sampled_nodes": job.get("sampled_nodes"),
        "ranks": job.get("ranks"),
        "sample_every": job.get("sample_every"),
        "elapsed_cycles": job.get("elapsed_cycles"),
        "samples": len(samples),
        "derived": derived_summary,
        "phases": phase_rows,
        "top_imbalanced": imbalance[:5],
        "alerts": alerts,
        "anomalies": anomalies,
    }


def build_report(artifacts: Dict[str, Any]) -> Dict[str, Any]:
    """Assemble the machine-readable report dict."""
    records = artifacts["records"]
    jobs = [r for r in records if r.get("kind") == "job"]
    report: Dict[str, Any] = {
        "source": artifacts.get("directory"),
        "jobs": [_job_section(job, records) for job in jobs],
    }
    regions = [r for r in records if r.get("kind") == "region"]
    if regions:
        report["regions"] = [
            {"region": r.get("region"),
             "depth": r.get("depth", 0),
             "visits": r.get("visits", 0),
             "jobs": r.get("jobs", 0),
             "cycles": r.get("cycles", 0),
             "group": r.get("group"),
             "derived": r.get("derived", {})}
            for r in regions]
    if artifacts.get("spans"):
        summary: Dict[str, Dict[str, float]] = {}
        for span in artifacts["spans"]:
            agg = summary.setdefault(span["name"], {
                "count": 0, "total_us": 0.0})
            agg["count"] += 1
            agg["total_us"] += span.get("dur_us") or 0.0
        report["span_summary"] = dict(sorted(
            summary.items(), key=lambda kv: -kv[1]["total_us"]))
    if artifacts.get("metrics"):
        report["sim_counters"] = artifacts["metrics"].get("counters", {})
    if artifacts.get("requests"):
        requests = [r for r in artifacts["requests"]
                    if r.get("kind") == "request"]
        if requests:
            by_path: Dict[str, Dict[str, Any]] = {}
            for req in requests:
                agg = by_path.setdefault(req.get("path", "?"), {
                    "count": 0, "errors": 0, "hits": 0, "misses": 0,
                    "total_seconds": 0.0, "max_seconds": 0.0})
                agg["count"] += 1
                if req.get("status", 200) >= 400:
                    agg["errors"] += 1
                if req.get("cache") == "hit":
                    agg["hits"] += 1
                elif req.get("cache") == "miss":
                    agg["misses"] += 1
                seconds = float(req.get("seconds") or 0.0)
                agg["total_seconds"] += seconds
                agg["max_seconds"] = max(agg["max_seconds"], seconds)
            report["service_requests"] = {
                "total": len(requests),
                "by_path": dict(sorted(by_path.items())),
            }
    if artifacts.get("ras"):
        ras = artifacts["ras"]
        by_kind: Dict[str, int] = {}
        for event in ras:
            by_kind[event["kind"]] = by_kind.get(event["kind"], 0) + 1
        report["ras"] = {
            "total": len(ras),
            "by_kind": dict(sorted(by_kind.items())),
            "events": ras,
        }
    return report


# ---------------------------------------------------------------------------
# markdown rendering
# ---------------------------------------------------------------------------
def _md_table(headers: Sequence[str],
              rows: Sequence[Sequence[Any]]) -> str:
    """A GitHub-flavored markdown table (local helper: the harness
    table formatter lives above this package in the import graph)."""
    out = ["| " + " | ".join(str(h) for h in headers) + " |",
           "|" + "|".join(" --- " for _ in headers) + "|"]
    for row in rows:
        out.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(out)


def _fmt(value: float, digits: int = 1) -> str:
    return f"{value:,.{digits}f}"


def render_markdown(report: Dict[str, Any]) -> str:
    """The report as a human-readable markdown document."""
    lines: List[str] = ["# Run report", ""]
    if report.get("source"):
        lines += [f"Artifacts: `{report['source']}`", ""]
    for job in report["jobs"]:
        lines += [f"## {job['job']}", ""]
        lines.append(_md_table(
            ["program", "flags", "mode", "nodes", "sampled", "ranks",
             "sample every", "elapsed cycles", "samples"],
            [[job["program"], job["flags"], job["mode"], job["nodes"],
              job["sampled_nodes"], job["ranks"],
              _fmt(job["sample_every"], 0),
              _fmt(job["elapsed_cycles"], 0), job["samples"]]]))
        lines.append("")
        if job["derived"]:
            lines += ["### Derived metrics over time", ""]
            rows = []
            for metric, stats in job["derived"].items():
                rows.append([metric, _fmt(stats["min"], 3),
                             _fmt(stats["mean"], 3),
                             _fmt(stats["max"], 3)])
            lines.append(_md_table(["metric", "min", "mean", "max"],
                                   rows))
            lines.append("")
        if job["phases"]:
            lines += ["### Phases", ""]
            rows = [[row["phase"], row["nodes"],
                     _fmt(row["mean_cycles"], 0),
                     _fmt(row["max_cycles"], 0),
                     f"{row['share'] * 100:.1f}%"]
                    for row in job["phases"]]
            lines.append(_md_table(
                ["phase", "nodes", "mean cycles", "max cycles",
                 "share of elapsed"], rows))
            lines.append("")
        if job["top_imbalanced"]:
            lines += ["### Top imbalanced events", ""]
            rows = [[row["event"], row["nodes"], _fmt(row["min"], 0),
                     _fmt(row["mean"], 0), _fmt(row["max"], 0),
                     f"{row['imbalance']:.3f}"]
                    for row in job["top_imbalanced"]]
            lines.append(_md_table(
                ["event", "nodes", "min", "mean", "max",
                 "(max-min)/mean"], rows))
            lines.append("")
        if job["alerts"]:
            lines += ["### Threshold interrupts", ""]
            rows = [[a["node"], _fmt(a["cycle"], 0), a["event"],
                     _fmt(a["threshold"], 0), _fmt(a["value"], 0)]
                    for a in job["alerts"]]
            lines.append(_md_table(
                ["node", "cycle", "event", "threshold", "value"], rows))
            lines.append("")
        if job["anomalies"]:
            lines += ["### Anomaly flags (rate jumps)", ""]
            rows = [[a["node"], a["event"],
                     ", ".join(_fmt(c, 0) for c in a["cycles"])]
                    for a in job["anomalies"]]
            lines.append(_md_table(["node", "event", "at cycles"], rows))
            lines.append("")
        if not (job["alerts"] or job["anomalies"]):
            lines += ["No threshold interrupts or anomaly flags fired.",
                      ""]
    if report.get("regions"):
        regions = report["regions"]
        lines += ["## Marker regions", ""]
        metric_names: List[str] = []
        for reg in regions:
            for metric in reg.get("derived", {}):
                if metric not in metric_names:
                    metric_names.append(metric)
        rows = []
        for reg in regions:
            derived = reg.get("derived", {})
            rows.append(
                ["&nbsp;&nbsp;" * reg.get("depth", 0) + reg["region"],
                 reg["visits"], reg["jobs"], _fmt(reg["cycles"], 0)]
                + [(_fmt(derived[m], 3) if m in derived else "-")
                   for m in metric_names])
        lines.append(_md_table(
            ["region", "visits", "jobs", "cycles"] + metric_names,
            rows))
        lines.append("")
    if report.get("ras"):
        ras = report["ras"]
        lines += ["## RAS events (injected faults)", ""]
        kinds = ", ".join(f"{kind}: {count}"
                          for kind, count in ras["by_kind"].items())
        lines += [f"{ras['total']} event(s) — {kinds}", ""]
        rows = [[e["kind"], e["severity"],
                 "-" if e.get("node_id") is None else e["node_id"],
                 e["phase"], e["job"],
                 ", ".join(f"{k}={v}"
                           for k, v in sorted(e.get("detail",
                                                    {}).items()))]
                for e in ras["events"][:20]]
        lines.append(_md_table(
            ["kind", "severity", "node", "phase", "job", "detail"],
            rows))
        if ras["total"] > 20:
            lines.append(f"... and {ras['total'] - 20} more "
                         "(see ras.jsonl)")
        lines.append("")
    if report.get("service_requests"):
        service = report["service_requests"]
        lines += ["## Service requests", "",
                  f"{service['total']} request(s) served.", ""]
        rows = []
        for path, agg in service["by_path"].items():
            mean = (agg["total_seconds"] / agg["count"]
                    if agg["count"] else 0.0)
            rows.append([path, agg["count"], agg["errors"],
                         agg["hits"], agg["misses"],
                         _fmt(mean * 1000, 1),
                         _fmt(agg["max_seconds"] * 1000, 1)])
        lines.append(_md_table(
            ["path", "count", "errors", "cache hits", "cache misses",
             "mean ms", "max ms"], rows))
        lines.append("")
    if report.get("span_summary"):
        lines += ["## Simulator span summary", ""]
        rows = [[name, int(agg["count"]), _fmt(agg["total_us"], 1)]
                for name, agg in list(report["span_summary"].items())[:15]]
        lines.append(_md_table(["span", "count", "total us"], rows))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def write_report(directory: str,
                 out_dir: Optional[str] = None) -> Dict[str, str]:
    """Build and write ``report.md`` + ``report.json``.

    Returns the written paths keyed by format.
    """
    artifacts = load_artifacts(directory)
    report = build_report(artifacts)
    out_dir = out_dir or directory
    os.makedirs(out_dir, exist_ok=True)
    json_path = os.path.join(out_dir, "report.json")
    with open(json_path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    md_path = os.path.join(out_dir, "report.md")
    with open(md_path, "w") as fh:
        fh.write(render_markdown(report))
    return {"json": json_path, "markdown": md_path}
