"""Structured logging for the simulator.

Replaces ad-hoc ``print`` progress reporting with stdlib logging under
the ``repro`` namespace, rendered as ``event key=value`` lines.  The
split of concerns mirrors real measurement tooling: *results* (the
experiment tables) go to stdout; *telemetry* (progress, timings,
artifact paths) goes to the log on stderr, where ``-v``/``-q`` can
raise or silence it without perturbing the result stream.
"""

from __future__ import annotations

import logging
import sys
from typing import Any, Optional

#: Root of the library's logger namespace.
LOGGER_NAME = "repro"

#: Verbosity (``-q`` = -1, default 0, ``-v`` = 1, ``-vv`` = 2) to level.
_VERBOSITY_LEVELS = {
    -1: logging.ERROR,
    0: logging.WARNING,
    1: logging.INFO,
    2: logging.DEBUG,
}


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger under the ``repro`` namespace (``repro.<name>``)."""
    if not name:
        return logging.getLogger(LOGGER_NAME)
    if name.startswith(LOGGER_NAME + ".") or name == LOGGER_NAME:
        return logging.getLogger(name)
    return logging.getLogger(f"{LOGGER_NAME}.{name}")


def kv(event: str, **fields: Any) -> str:
    """Render ``event key=value ...`` with stable field order.

    Floats are compacted to 4 significant digits; strings containing
    whitespace are quoted so lines stay machine-splittable.
    """
    parts = [event]
    for key, value in fields.items():
        parts.append(f"{key}={_format_value(value)}")
    return " ".join(parts)


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, str) and any(c.isspace() for c in value):
        return f'"{value}"'
    return str(value)


class KeyValueFormatter(logging.Formatter):
    """``HH:MM:SS level logger message`` — terse, grep-friendly."""

    def __init__(self):
        super().__init__(fmt="%(asctime)s %(levelname)-7s %(name)s "
                             "%(message)s",
                         datefmt="%H:%M:%S")


def setup(verbosity: int = 0, stream=None) -> logging.Logger:
    """Configure the ``repro`` logger tree; idempotent.

    Installs one stream handler (stderr by default) with the key=value
    formatter, replacing any handler a previous ``setup`` installed, so
    repeated CLI invocations in one process don't stack handlers.
    """
    verbosity = max(-1, min(2, verbosity))
    logger = logging.getLogger(LOGGER_NAME)
    logger.setLevel(_VERBOSITY_LEVELS[verbosity])
    logger.propagate = False
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None
                                    else sys.stderr)
    handler.setFormatter(KeyValueFormatter())
    logger.addHandler(handler)
    return logger
