"""Legacy setup shim so `pip install -e .` works without the `wheel`
package (offline environments lack PEP-517 editable support)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Simulated Blue Gene/P performance-counter workload "
        "characterization (reproduction of Ganesan et al., ICPP 2008)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
)
